// SystemMonitor — the paper's full framework (Figure 6) over a whole
// distributed system: one PairModel per graph edge, driven sample by
// sample, with the three-level fitness aggregation of Section 5
// (Q^{a,b} per pair -> Q^a per measurement -> Q for the system).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/calibration.h"
#include "core/config.h"
#include "engine/alarm.h"
#include "core/fitness.h"
#include "core/model.h"
#include "engine/health.h"
#include "engine/measurement_graph.h"
#include "engine/quarantine.h"
#include "engine/retrain_pool.h"
#include "engine/snapshot.h"
#include "engine/thread_pool.h"
#include "timeseries/frame.h"

namespace pmcorr {

struct EngineFaultPlan;

/// Rolling-retrain knob: when enabled the monitor owns a shared bounded
/// RetrainPool (engine/retrain_pool.h) in detached mode — one window
/// slot per pair, a fixed worker count — and adopts finished rebuilds
/// at sample boundaries, replacing the standalone per-pair retrainers.
/// Windows buffer the guard-filtered feed (rebuilds learn from exactly
/// the stream the serving models saw) and are not part of the
/// checkpoint format: a restored monitor starts with empty windows and
/// pool.min_samples keeps it from rebuilding until they refill live.
/// Adopted models carry fresh Learn-time thresholds, not a later
/// CalibrateThresholds overlay — the RollingPairRetrainer semantics.
struct RetrainConfig {
  bool enabled = false;
  RetrainPoolConfig pool;
};

/// Engine configuration.
struct MonitorConfig {
  /// Shared configuration of every pair model.
  ModelConfig model;
  /// Worker threads for initialization, calibration and batched runs
  /// (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Samples per pair-major batch in Run(): each worker sweeps its shard
  /// of pairs across this many samples between merge phases. 0 sizes the
  /// batch automatically so the per-batch outcome buffer stays around
  /// 32 MiB; 1 degenerates to sample-major stepping. Any value produces
  /// the identical snapshot/alarm stream — this is purely a
  /// memory/latency knob.
  std::size_t batch_samples = 0;
  /// Ingest guard: degraded-stream detection in front of the models
  /// (engine/health.h). Enabled by default; bitwise invisible on clean
  /// on-cadence streams.
  HealthConfig health;
  /// Per-pair circuit breaker (engine/quarantine.h). Enabled by default
  /// for exceptions; the outlier-burst breaker stays off unless armed.
  QuarantineConfig quarantine;
  /// Rolling retrain through the shared bounded pool. Off by default —
  /// a disabled knob is bitwise invisible everywhere.
  RetrainConfig retrain;
};

/// Phase timings of the last Run/RunDelta call, for scale benchmarks:
/// the pair-major model sweep (parallel), the alarm-log k-way merge, and
/// snapshot/delta assembly (parallel per-sample work plus the serial
/// lifetime-averager pass).
struct RunStats {
  double sweep_seconds = 0.0;
  double alarm_merge_seconds = 0.0;
  double assemble_seconds = 0.0;
  std::size_t batches = 0;
};

class SystemMonitor {
 public:
  /// Learns one PairModel per graph edge from the history frame (the
  /// models' initialization data) in parallel.
  SystemMonitor(const MeasurementFrame& history, MeasurementGraph graph,
                MonitorConfig config);

  /// Restores a monitor from checkpointed parts (see io/monitor_io.h):
  /// pre-built pair models (one per graph edge, same order) plus the
  /// lifetime aggregates. Used for restart-without-relearning.
  SystemMonitor(MonitorConfig config, MeasurementGraph graph,
                std::vector<MeasurementInfo> infos,
                std::vector<PairModel> models,
                std::vector<ScoreAverager> measurement_averages,
                ScoreAverager system_average, std::size_t steps);

  /// Feeds one aligned sample (values[i] = measurement i) and returns the
  /// snapshot; `tp` is the sample's timestamp.
  SystemSnapshot Step(std::span<const double> values, TimePoint tp);

  /// Allocation-reusing overload: assembles the snapshot into `out`,
  /// reusing its vectors' capacity. After a warmup tick the steady-state
  /// path is malloc-free (verified by tests/test_alloc_audit.cpp) — the
  /// long-running ingest loop of a shard-scale deployment steps at a
  /// fixed memory footprint.
  void Step(std::span<const double> values, TimePoint tp,
            SystemSnapshot& out);

  /// Feeds an entire test frame (its measurements must line up with the
  /// history frame) and returns one snapshot per sample.
  ///
  /// Pair-major batched execution: instead of a fork/join barrier per
  /// sample (the Step loop), each worker takes a contiguous shard of
  /// pairs and sweeps a whole batch of samples for its shard in one pass
  /// — per-pair state (previous cell, grid extensions, alarm bounds) is
  /// private to the pair, so the sweep is embarrassingly parallel. The
  /// post-sweep phase is sharded too: workers sort shard-local alarm
  /// logs (merged by a deterministic k-way merge) and assemble the pure
  /// per-sample snapshot fields in parallel; only the lifetime-averager
  /// updates stay serial, in time order, because floating-point
  /// accumulation order is part of the bitwise contract. The stream is
  /// bitwise identical to calling Step once per sample (proven by
  /// tests/test_differential.cpp).
  std::vector<SystemSnapshot> Run(const MeasurementFrame& test);

  /// Like Run, but emits incremental SystemDeltas instead of full
  /// snapshots: the first tick (or the first after tracking was
  /// invalidated by Step/Run/AddPair/RetirePair/calibration) is a
  /// baseline restating the engaged state; every other tick carries
  /// only pairs/measurements whose score changed bits since the
  /// previous tick, so a quiet tick is O(changes), not O(pairs). The
  /// engine state advances exactly as Run would (same models, averages,
  /// alarms — ReconstructSnapshots(deltas) is bitwise identical to
  /// Run's snapshots, proven by tests/test_delta.cpp).
  std::vector<SystemDelta> RunDelta(const MeasurementFrame& test);

  /// Phase timings of the last Run/RunDelta call.
  const RunStats& LastRunStats() const { return run_stats_; }

  /// Forgets the per-pair previous cells (call between discontiguous
  /// segments, e.g. train -> test gaps).
  void ResetSequences();

  /// Dynamic topology: appends one pair to the running monitor (a
  /// machine joined the fleet and warmed up). The model arrives
  /// pre-built — learned elsewhere, typically on the warmup slice — and
  /// has its sequence reset so its first step starts a fresh transition
  /// chain. Call between Step/Run calls only (the serial sections of the
  /// thread-safety contract). Returns the new pair's index; existing
  /// pair indices, models and scores are untouched — proven bitwise by
  /// tests/test_dynamic_topology.cpp. Note: AddPair/RetirePair state is
  /// not part of the checkpoint format (io/monitor_io.h); a restored
  /// monitor must replay its topology script.
  std::size_t AddPair(PairId pair, PairModel model);

  /// Convenience overload: learns the pair's model from `history` (same
  /// width as the monitor's frame) with the monitor's model config.
  std::size_t AddPair(PairId pair, const MeasurementFrame& history);

  /// Dynamic topology: administratively retires pair `pair_index` (its
  /// machine left the fleet). The pair is skipped from the next sample
  /// on — its snapshot slot reads disengaged, exactly like a
  /// quarantine-retired pair — while every other pair's scores stay
  /// bitwise identical. Requires the quarantine breaker (the disengage
  /// path) to be enabled; throws std::logic_error otherwise. Idempotent.
  void RetirePair(std::size_t pair_index);

  /// Per-pair alarm calibration: replays a clean holdout frame through a
  /// frozen copy of each pair model and arms that pair's fitness/delta
  /// bounds at the `target_false_positive_rate` quantile of its own
  /// scores (each pair has its own predictability, so one global bound
  /// over- or under-alarms; see core/calibration.h). Runs in parallel;
  /// leaves the per-pair sequences reset.
  void CalibrateThresholds(const MeasurementFrame& holdout,
                           double target_false_positive_rate);

  const MeasurementGraph& Graph() const { return graph_; }
  std::size_t MeasurementCount() const { return infos_.size(); }
  const std::vector<MeasurementInfo>& Infos() const { return infos_; }
  const PairModel& Model(std::size_t pair_index) const {
    return models_.at(pair_index);
  }

  /// Lifetime mean of Q^a per measurement (over engaged samples) — feeds
  /// the per-machine localization of Figure 14.
  const std::vector<ScoreAverager>& MeasurementAverages() const {
    return measurement_avg_;
  }

  /// Lifetime mean of the system score Q — the "average fitness score" of
  /// Figure 13(a).
  const ScoreAverager& SystemAverage() const { return system_avg_; }

  /// Samples processed so far.
  std::size_t StepCount() const { return steps_; }

  /// Every pair alarm raised so far (time, pair index, fitness,
  /// outlier flag) — feeds drill-down and noisy-pair reports.
  const AlarmLog& Alarms() const { return alarm_log_; }

  /// The ingest guard's current view of every measurement feed.
  const IngestGuard& Health() const { return guard_; }

  /// The per-pair circuit breaker's current state.
  const PairQuarantine& Quarantine() const { return quarantine_; }

  /// The shared retrain pool, or nullptr when config.retrain is off.
  /// Exposed for observability (rebuild/failure counters) and test
  /// choreography (WaitForPair/WaitForIdle) — the monitor itself drives
  /// adoption at sample boundaries.
  RetrainPool* Retrain() { return retrain_.get(); }
  const RetrainPool* Retrain() const { return retrain_.get(); }

  /// Installs a scripted engine fault plan (engine/fault_plan.h) checked
  /// at every pair step; pass nullptr to clear. Non-owning — the plan
  /// must outlive its installation. Test-only seam: production monitors
  /// never install one.
  void SetFaultPlanForTest(const EngineFaultPlan* plan) {
    fault_plan_ = plan;
  }

  /// Audits the engine-level invariants: one model per graph pair,
  /// per-measurement info/averager arrays sized to the graph, every
  /// graph pair referencing valid measurement ids, and finite lifetime
  /// aggregates with count <= steps. With `deep` (the default, used
  /// post-construction and post-deserialize) every pair model is
  /// audited too; the post-Step hook passes deep = false because each
  /// PairModel::Step already audited its own model.
  void CheckInvariants(bool deep = true) const;

 private:
  friend struct InvariantTestPeer;

  /// Compact per-(pair, sample) result of a pair-major sweep — only the
  /// fields the assembly phase needs.
  struct SweepCell {
    double fitness = 0.0;
    bool has_score = false;
    bool alarm = false;
    bool outlier = false;
    bool extended = false;
    // The quarantine skipped this (pair, sample) — or the pair tripped
    // mid-sample and produced nothing.
    bool skipped = false;
  };

  /// Ingest-guard pre-pass results for one Run/RunDelta call.
  struct GuardPrepass {
    std::vector<SampleReport> reports;
    std::vector<MeasurementHealth> health_timeline;  // samples x m
    std::vector<std::vector<double>> filtered;       // lazily built
    std::vector<std::uint8_t> seq_break;
    bool any_break = false;
  };

  /// Level 2 + 3 of Section 5 over an already-filled pair_scores vector
  /// (pure arithmetic — no monitor state touched), shared by Step and
  /// the parallel assembly of Run/RunDelta.
  void ComputeAggregates(SystemSnapshot& snap) const;

  /// ComputeAggregates plus the lifetime averager updates and the step
  /// counter — the exact per-sample aggregation of the Step path.
  void FinishSnapshot(SystemSnapshot& snap);

  /// Shared Run/RunDelta driver: guard pre-pass, pair-major batched
  /// sweep, sharded assembly. Exactly one of snapshots/deltas is set.
  void RunImpl(const MeasurementFrame& test,
               std::vector<SystemSnapshot>* snapshots,
               std::vector<SystemDelta>* deltas);

  /// Serial ingest-guard pre-pass over the whole frame (the guard is a
  /// serial state machine); fills prepass reusing its capacity.
  void BuildGuardPrepass(const MeasurementFrame& test, GuardPrepass& prepass);

  /// Batch width used by Run for a given pair count (resolves
  /// config_.batch_samples == 0 to the auto size).
  std::size_t BatchSamples(std::size_t pair_count) const;

  /// Shared AddPair body: graph append + model install + quarantine and
  /// retrain-window slots. (x, y) seed the pair's retrain window (empty
  /// when no history is at hand).
  std::size_t AddPairImpl(PairId pair, PairModel model,
                          std::span<const double> x,
                          std::span<const double> y);

  MonitorConfig config_;
  MeasurementGraph graph_;
  std::vector<MeasurementInfo> infos_;
  std::vector<PairModel> models_;
  ThreadPool pool_;

  std::vector<ScoreAverager> measurement_avg_;
  ScoreAverager system_avg_;
  AlarmLog alarm_log_;
  std::size_t steps_ = 0;

  /// Step()'s per-call outcome buffer, reused across samples so the
  /// sample-major loop doesn't allocate pair_count outcomes per sample.
  std::vector<StepOutcome> step_scratch_;

  /// Degraded-mode machinery. guard_values_ is Step()'s mutable copy of
  /// the caller's row (the guard suppresses in place); step_skipped_
  /// marks pairs the quarantine skipped this sample (per-pair slots, so
  /// workers write without synchronization).
  IngestGuard guard_;
  PairQuarantine quarantine_;
  /// Detached-mode retrain pool (one window slot per pair, indices
  /// aligned with models_); null when config_.retrain is off.
  std::unique_ptr<RetrainPool> retrain_;
  const EngineFaultPlan* fault_plan_ = nullptr;
  std::vector<double> guard_values_;
  std::vector<std::uint8_t> step_skipped_;

  /// Run/RunDelta scratch, persisted across batches and calls so the
  /// steady-state batch loop allocates nothing: the sweep-cell arena
  /// (pairs x batch), per-shard alarm logs + merge cursors, resolved
  /// input columns, the per-batch Q^a arena, and the guard pre-pass.
  RunStats run_stats_;
  std::vector<SweepCell> run_cells_;
  std::vector<AlarmLog> run_shard_logs_;
  std::vector<std::size_t> run_merge_cursors_;
  std::vector<std::span<const double>> run_xs_;
  std::vector<std::span<const double>> run_ys_;
  std::vector<std::optional<double>> run_qa_;  // batch x m, per-sample Q^a
  GuardPrepass run_guard_;

  /// Dirty-pair tracking for RunDelta: the engaged state, score bits,
  /// Q^a and feed health of the last emitted tick. Valid only while no
  /// other state-advancing call interleaves (Step, full Run, topology
  /// or calibration changes invalidate it — the next RunDelta re-emits
  /// a baseline).
  bool delta_valid_ = false;
  std::vector<std::uint8_t> delta_pair_engaged_;
  std::vector<double> delta_pair_score_;
  std::vector<std::optional<double>> delta_qa_;
  std::vector<MeasurementHealth> delta_health_;
};

}  // namespace pmcorr
