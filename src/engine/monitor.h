// SystemMonitor — the paper's full framework (Figure 6) over a whole
// distributed system: one PairModel per graph edge, driven sample by
// sample, with the three-level fitness aggregation of Section 5
// (Q^{a,b} per pair -> Q^a per measurement -> Q for the system).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/calibration.h"
#include "core/config.h"
#include "engine/alarm.h"
#include "core/fitness.h"
#include "core/model.h"
#include "engine/health.h"
#include "engine/measurement_graph.h"
#include "engine/quarantine.h"
#include "engine/thread_pool.h"
#include "timeseries/frame.h"

namespace pmcorr {

struct EngineFaultPlan;

/// Engine configuration.
struct MonitorConfig {
  /// Shared configuration of every pair model.
  ModelConfig model;
  /// Worker threads for initialization, calibration and batched runs
  /// (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Samples per pair-major batch in Run(): each worker sweeps its shard
  /// of pairs across this many samples between merge phases. 0 sizes the
  /// batch automatically so the per-batch outcome buffer stays around
  /// 32 MiB; 1 degenerates to sample-major stepping. Any value produces
  /// the identical snapshot/alarm stream — this is purely a
  /// memory/latency knob.
  std::size_t batch_samples = 0;
  /// Ingest guard: degraded-stream detection in front of the models
  /// (engine/health.h). Enabled by default; bitwise invisible on clean
  /// on-cadence streams.
  HealthConfig health;
  /// Per-pair circuit breaker (engine/quarantine.h). Enabled by default
  /// for exceptions; the outlier-burst breaker stays off unless armed.
  QuarantineConfig quarantine;
};

/// The engine's view of one processed sample.
struct SystemSnapshot {
  std::size_t sample = 0;
  TimePoint time = 0;

  /// Q^{a,b} per graph pair; disengaged when the pair had no scorable
  /// transition (first sample, or source cell unknown after an outlier).
  std::vector<std::optional<double>> pair_scores;

  /// Q^a per measurement (mean over its engaged pair scores).
  std::vector<std::optional<double>> measurement_scores;

  /// Q for the entire system (mean over engaged measurement scores).
  std::optional<double> system_score;

  /// Pair indices that alarmed at this sample.
  std::vector<std::size_t> alarmed_pairs;

  /// Pairs whose observation fell outside the grid beyond the extension
  /// margin / pairs that grew their grid at this sample.
  std::size_t outlier_pairs = 0;
  std::size_t extended_pairs = 0;

  /// Degraded-mode telemetry (engine/health.h, engine/quarantine.h).
  /// On a clean stream: kNone, all-healthy, 0, 0. These fields are
  /// engine-side observability only — they are not part of the JSONL
  /// snapshot-stream format or the checkpoint format.
  StreamEvent stream_event = StreamEvent::kNone;
  /// Per-measurement feed health after this sample; empty when the
  /// ingest guard is disabled.
  std::vector<MeasurementHealth> measurement_health;
  /// Values the guard suppressed to NaN at this sample.
  std::size_t suppressed_values = 0;
  /// Pairs that were not stepped at this sample (quarantined, retired,
  /// or tripped mid-sample).
  std::size_t quarantined_pairs = 0;
};

class SystemMonitor {
 public:
  /// Learns one PairModel per graph edge from the history frame (the
  /// models' initialization data) in parallel.
  SystemMonitor(const MeasurementFrame& history, MeasurementGraph graph,
                MonitorConfig config);

  /// Restores a monitor from checkpointed parts (see io/monitor_io.h):
  /// pre-built pair models (one per graph edge, same order) plus the
  /// lifetime aggregates. Used for restart-without-relearning.
  SystemMonitor(MonitorConfig config, MeasurementGraph graph,
                std::vector<MeasurementInfo> infos,
                std::vector<PairModel> models,
                std::vector<ScoreAverager> measurement_averages,
                ScoreAverager system_average, std::size_t steps);

  /// Feeds one aligned sample (values[i] = measurement i) and returns the
  /// snapshot; `tp` is the sample's timestamp.
  SystemSnapshot Step(std::span<const double> values, TimePoint tp);

  /// Feeds an entire test frame (its measurements must line up with the
  /// history frame) and returns one snapshot per sample.
  ///
  /// Pair-major batched execution: instead of a fork/join barrier per
  /// sample (the Step loop), each worker takes a contiguous shard of
  /// pairs and sweeps a whole batch of samples for its shard in one pass
  /// — per-pair state (previous cell, grid extensions, alarm bounds) is
  /// private to the pair, so the sweep is embarrassingly parallel. A
  /// deterministic merge phase then assembles the snapshot stream in time
  /// order, bitwise identical to calling Step once per sample: the same
  /// per-pair outcomes feed the same Q^a / Q aggregation arithmetic in
  /// the same order, and shard-local alarm logs merge in (time, pair)
  /// order — exactly the order the serial loop records.
  std::vector<SystemSnapshot> Run(const MeasurementFrame& test);

  /// Forgets the per-pair previous cells (call between discontiguous
  /// segments, e.g. train -> test gaps).
  void ResetSequences();

  /// Dynamic topology: appends one pair to the running monitor (a
  /// machine joined the fleet and warmed up). The model arrives
  /// pre-built — learned elsewhere, typically on the warmup slice — and
  /// has its sequence reset so its first step starts a fresh transition
  /// chain. Call between Step/Run calls only (the serial sections of the
  /// thread-safety contract). Returns the new pair's index; existing
  /// pair indices, models and scores are untouched — proven bitwise by
  /// tests/test_dynamic_topology.cpp. Note: AddPair/RetirePair state is
  /// not part of the checkpoint format (io/monitor_io.h); a restored
  /// monitor must replay its topology script.
  std::size_t AddPair(PairId pair, PairModel model);

  /// Convenience overload: learns the pair's model from `history` (same
  /// width as the monitor's frame) with the monitor's model config.
  std::size_t AddPair(PairId pair, const MeasurementFrame& history);

  /// Dynamic topology: administratively retires pair `pair_index` (its
  /// machine left the fleet). The pair is skipped from the next sample
  /// on — its snapshot slot reads disengaged, exactly like a
  /// quarantine-retired pair — while every other pair's scores stay
  /// bitwise identical. Requires the quarantine breaker (the disengage
  /// path) to be enabled; throws std::logic_error otherwise. Idempotent.
  void RetirePair(std::size_t pair_index);

  /// Per-pair alarm calibration: replays a clean holdout frame through a
  /// frozen copy of each pair model and arms that pair's fitness/delta
  /// bounds at the `target_false_positive_rate` quantile of its own
  /// scores (each pair has its own predictability, so one global bound
  /// over- or under-alarms; see core/calibration.h). Runs in parallel;
  /// leaves the per-pair sequences reset.
  void CalibrateThresholds(const MeasurementFrame& holdout,
                           double target_false_positive_rate);

  const MeasurementGraph& Graph() const { return graph_; }
  std::size_t MeasurementCount() const { return infos_.size(); }
  const std::vector<MeasurementInfo>& Infos() const { return infos_; }
  const PairModel& Model(std::size_t pair_index) const {
    return models_.at(pair_index);
  }

  /// Lifetime mean of Q^a per measurement (over engaged samples) — feeds
  /// the per-machine localization of Figure 14.
  const std::vector<ScoreAverager>& MeasurementAverages() const {
    return measurement_avg_;
  }

  /// Lifetime mean of the system score Q — the "average fitness score" of
  /// Figure 13(a).
  const ScoreAverager& SystemAverage() const { return system_avg_; }

  /// Samples processed so far.
  std::size_t StepCount() const { return steps_; }

  /// Every pair alarm raised so far (time, pair index, fitness,
  /// outlier flag) — feeds drill-down and noisy-pair reports.
  const AlarmLog& Alarms() const { return alarm_log_; }

  /// The ingest guard's current view of every measurement feed.
  const IngestGuard& Health() const { return guard_; }

  /// The per-pair circuit breaker's current state.
  const PairQuarantine& Quarantine() const { return quarantine_; }

  /// Installs a scripted engine fault plan (engine/fault_plan.h) checked
  /// at every pair step; pass nullptr to clear. Non-owning — the plan
  /// must outlive its installation. Test-only seam: production monitors
  /// never install one.
  void SetFaultPlanForTest(const EngineFaultPlan* plan) {
    fault_plan_ = plan;
  }

  /// Audits the engine-level invariants: one model per graph pair,
  /// per-measurement info/averager arrays sized to the graph, every
  /// graph pair referencing valid measurement ids, and finite lifetime
  /// aggregates with count <= steps. With `deep` (the default, used
  /// post-construction and post-deserialize) every pair model is
  /// audited too; the post-Step hook passes deep = false because each
  /// PairModel::Step already audited its own model.
  void CheckInvariants(bool deep = true) const;

 private:
  friend struct InvariantTestPeer;
  /// Level 2 + 3 of Section 5 over an already-filled pair_scores vector,
  /// plus the lifetime averager updates and the step counter — the exact
  /// per-sample aggregation shared by Step and Run's merge phase.
  void FinishSnapshot(SystemSnapshot& snap);

  /// Batch width used by Run for a given pair count (resolves
  /// config_.batch_samples == 0 to the auto size).
  std::size_t BatchSamples(std::size_t pair_count) const;

  MonitorConfig config_;
  MeasurementGraph graph_;
  std::vector<MeasurementInfo> infos_;
  std::vector<PairModel> models_;
  ThreadPool pool_;

  std::vector<ScoreAverager> measurement_avg_;
  ScoreAverager system_avg_;
  AlarmLog alarm_log_;
  std::size_t steps_ = 0;

  /// Step()'s per-call outcome buffer, reused across samples so the
  /// sample-major loop doesn't allocate pair_count outcomes per sample.
  std::vector<StepOutcome> step_scratch_;

  /// Degraded-mode machinery. guard_values_ is Step()'s mutable copy of
  /// the caller's row (the guard suppresses in place); step_skipped_
  /// marks pairs the quarantine skipped this sample (per-pair slots, so
  /// workers write without synchronization).
  IngestGuard guard_;
  PairQuarantine quarantine_;
  const EngineFaultPlan* fault_plan_ = nullptr;
  std::vector<double> guard_values_;
  std::vector<std::uint8_t> step_skipped_;
};

}  // namespace pmcorr
