// Ingest guard: per-measurement health tracking for degraded collectors.
//
// The paper assumes a clean feed — one value per measurement every six
// minutes. Real collectors miss that contract in four ways: samples
// arrive late (a gap), twice (duplicate timestamps), out of order, or
// with a frozen value (a wedged agent replaying its last reading). The
// IngestGuard sits in front of SystemMonitor::Step/Run, detects each
// case against the learned cadence, and converts bad values to the NaN
// missing-sample path the models already understand — so a degraded
// stream can only ever *suppress* evidence, never fabricate transitions
// that fire alarms.
//
// Each measurement also carries a small health state machine
// (healthy -> stale -> dead, with flapping for unstable feeds) that the
// monitor exposes per snapshot, letting operators distinguish "this
// input alarmed" from "this input is gone".
//
// On a clean on-cadence stream the guard is bitwise invisible: values
// pass through untouched, no state changes, and the engine's output is
// identical to running without it (the golden-trace suite runs with the
// guard enabled).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/time.h"

namespace pmcorr {

/// Health of one measurement's feed, least to most degraded.
enum class MeasurementHealth : std::uint8_t {
  kHealthy = 0,   ///< delivering usable values on cadence
  kStale = 1,     ///< several consecutive samples missing or suppressed
  kFlapping = 2,  ///< bouncing between healthy and degraded
  kDead = 3,      ///< missing long enough to be considered gone
};

const char* MeasurementHealthName(MeasurementHealth health);

/// Stream-level anomaly detected for one arriving sample.
enum class StreamEvent : std::uint8_t {
  kNone = 0,        ///< on cadence
  kGap = 1,         ///< arrived late: one or more samples were skipped
  kDuplicate = 2,   ///< timestamp equal to the previous sample's
  kOutOfOrder = 3,  ///< timestamp earlier than the previous sample's
};

const char* StreamEventName(StreamEvent event);

/// Ingest-guard policy. The defaults are deliberately conservative: a
/// value must repeat bitwise-identically `frozen_after` times before it
/// is treated as frozen (real noisy telemetry never repeats a double
/// bitwise), so clean streams are untouched.
struct HealthConfig {
  /// Master switch; disabled means Filter passes everything through.
  bool enabled = true;

  /// Expected seconds between samples. 0 = learn it from the first two
  /// distinct timestamps (SystemMonitor seeds it from the history
  /// frame's period instead, so the guard knows the cadence from step
  /// one).
  Duration expected_period = 0;

  /// An arrival later than `late_factor * expected_period` after the
  /// previous sample is a gap: the guard reports a sequence break so the
  /// monitor resets per-pair transition state instead of scoring a
  /// transition across the hole.
  double late_factor = 1.5;

  /// Consecutive bitwise-identical values before a feed is considered
  /// frozen and its value suppressed to NaN. 0 disables frozen
  /// detection.
  std::size_t frozen_after = 12;

  /// Consecutive missing/suppressed samples before health drops to
  /// kStale.
  std::size_t stale_after = 4;

  /// Consecutive missing/suppressed samples before health drops to
  /// kDead. Defaults to ten stale windows (4 hours at the paper's
  /// 6-minute cadence).
  std::size_t dead_after = 40;

  /// Consecutive good samples before a stale/dead/flapping feed is
  /// declared healthy again.
  std::size_t recover_after = 3;

  /// Flap detection: if a feed leaves kHealthy `flap_transitions` or
  /// more times within its last `flap_window` samples it is marked
  /// kFlapping until it holds a recovery streak.
  std::size_t flap_window = 64;
  std::size_t flap_transitions = 4;
};

/// What the guard did to one arriving sample.
struct SampleReport {
  /// Stream-level anomaly for this arrival.
  StreamEvent event = StreamEvent::kNone;

  /// True when the caller must reset per-pair transition sequences
  /// before stepping the models (gap, duplicate, or out-of-order): the
  /// previous cell no longer refers to the immediately preceding
  /// cadence slot.
  bool sequence_break = false;

  /// Values this call replaced with NaN (frozen feeds, plus every value
  /// of a duplicate/out-of-order sample).
  std::size_t suppressed = 0;
};

/// The guard itself: feed each arriving sample through Filter (in
/// arrival order) before stepping the monitor. Filter mutates `values`
/// in place — suppressed entries become NaN — and advances the health
/// state machines. Not thread-safe; one guard per monitor, driven from
/// the serial ingest path.
class IngestGuard {
 public:
  IngestGuard() = default;
  IngestGuard(std::size_t measurement_count, HealthConfig config);

  bool Enabled() const { return config_.enabled && !states_.empty(); }
  const HealthConfig& Config() const { return config_; }

  /// Inspects (and possibly suppresses) one arriving sample. `values`
  /// must hold one entry per measurement.
  SampleReport Filter(std::span<double> values, TimePoint tp);

  /// Health of measurement `m` after the last Filter call.
  MeasurementHealth Health(std::size_t m) const {
    return states_[m].health;
  }

  /// All measurement healths, indexed by measurement id.
  std::vector<MeasurementHealth> HealthStates() const;

  /// Allocation-reusing variant: fills `out` (capacity permitting,
  /// without touching the heap) — the monitor's steady-state Step path.
  void CopyHealthStates(std::vector<MeasurementHealth>& out) const;

  /// True when every feed is currently kHealthy (the common case; lets
  /// callers skip copying health vectors on clean streams).
  bool AllHealthy() const { return degraded_ == 0; }

  /// Lifetime count of values suppressed to NaN.
  std::size_t SuppressedTotal() const { return suppressed_total_; }

  /// Lifetime counts of each non-kNone stream event.
  std::size_t GapCount() const { return gaps_; }
  std::size_t DuplicateCount() const { return duplicates_; }
  std::size_t OutOfOrderCount() const { return out_of_order_; }

  /// The cadence the guard is enforcing (0 until learned).
  Duration ExpectedPeriod() const { return config_.expected_period; }

  /// Forgets per-feed value history and timing (call between
  /// discontiguous segments, alongside SystemMonitor::ResetSequences);
  /// health states and lifetime counters persist.
  void ResetTiming();

 private:
  struct FeedState {
    MeasurementHealth health = MeasurementHealth::kHealthy;
    /// Bit pattern of the last non-NaN accepted value (bitwise compare:
    /// NaN payloads and signed zeros are distinguished, and equality is
    /// exact — no tolerance that could trip on real noise).
    std::uint64_t last_bits = 0;
    bool has_last = false;
    /// Consecutive arrivals repeating last_bits (including the first).
    std::size_t frozen_run = 0;
    /// Consecutive samples this feed contributed nothing (NaN in, or
    /// suppressed).
    std::size_t missing_run = 0;
    /// Consecutive samples this feed contributed a usable value.
    std::size_t good_run = 0;
    /// Samples since the feed last left kHealthy (flap window position).
    std::size_t since_degrade = 0;
    /// Times the feed left kHealthy within the current flap window.
    std::size_t recent_degrades = 0;
  };

  void UpdateHealth(FeedState& feed, bool usable);

  HealthConfig config_;
  std::vector<FeedState> states_;
  TimePoint last_tp_ = 0;
  bool has_last_tp_ = false;
  std::size_t degraded_ = 0;  // feeds currently not kHealthy
  std::size_t suppressed_total_ = 0;
  std::size_t gaps_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t out_of_order_ = 0;
};

}  // namespace pmcorr
