#include "engine/assembler.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace pmcorr {

RowAssembler::RowAssembler(AssemblerConfig config, RowCallback on_row)
    : config_(config), on_row_(std::move(on_row)) {
  PMCORR_DASSERT(config_.period > 0);
  PMCORR_DASSERT(config_.measurement_count > 0);
  PMCORR_DASSERT(config_.max_open_slots > 0);
}

std::int64_t RowAssembler::SlotOf(TimePoint tp) const {
  const Duration offset = tp - config_.start;
  std::int64_t slot = offset / config_.period;
  if (offset < 0 && offset % config_.period != 0) --slot;
  return slot;
}

void RowAssembler::EmitThrough(std::int64_t slot) {
  while (!slots_.empty() && slots_.begin()->first <= slot) {
    const auto it = slots_.begin();
    on_row_(it->second);
    last_emitted_ = it->first;
    any_emitted_ = true;
    slots_.erase(it);
  }
}

void RowAssembler::Offer(MeasurementId id, TimePoint tp, double value) {
  PMCORR_DASSERT(id.valid());
  PMCORR_DASSERT(static_cast<std::size_t>(id.value) < config_.measurement_count);

  const std::int64_t slot = SlotOf(tp);
  if (any_emitted_ && slot <= last_emitted_) {
    ++late_drops_;  // its row already shipped
    return;
  }

  auto [it, inserted] = slots_.try_emplace(slot);
  if (inserted) {
    it->second.time = config_.start + slot * config_.period;
    it->second.values.assign(config_.measurement_count,
                             std::numeric_limits<double>::quiet_NaN());
  }
  double& cell = it->second.values[static_cast<std::size_t>(id.value)];
  if (std::isnan(cell)) ++it->second.filled;
  cell = value;

  // A complete newest slot ships immediately (forcing any older,
  // still-incomplete slots out first so rows stay in time order); and
  // the open-slot window is bounded regardless.
  const std::int64_t newest = slots_.rbegin()->first;
  if (it->first == newest && it->second.filled == config_.measurement_count) {
    EmitThrough(newest);
    return;
  }
  while (!slots_.empty() &&
         newest - slots_.begin()->first >=
             static_cast<std::int64_t>(config_.max_open_slots)) {
    EmitThrough(slots_.begin()->first);
  }
}

void RowAssembler::Flush() {
  EmitThrough(std::numeric_limits<std::int64_t>::max() - 1);
}

}  // namespace pmcorr
