#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.h"

namespace pmcorr {
namespace {

// Shared completion state for one fork/join region. Tasks referencing it
// outlive neither the region (the caller blocks until `remaining` hits
// zero) nor the pool.
struct JoinState {
  std::atomic<std::size_t> remaining;
  std::mutex mutex;
  std::condition_variable done;
  // First failure by range position, so the rethrown exception does not
  // depend on scheduling order.
  std::exception_ptr error;
  std::size_t error_begin = 0;

  explicit JoinState(std::size_t tasks) : remaining(tasks) {}

  void RecordError(std::size_t begin, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!error || begin < error_begin) {
      error = std::move(e);
      error_begin = begin;
    }
  }

  void TaskDone() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      done.notify_one();
    }
  }

  void Wait() {
    std::exception_ptr first_error;
    {
      std::unique_lock<std::mutex> lock(mutex);
      done.wait(lock, [this] {
        return remaining.load(std::memory_order_acquire) == 0;
      });
      // Take sole ownership before rethrowing: the recording worker must
      // not drop the exception's last reference (its task lambda can
      // still be mid-destruction) while the caller reads the object.
      first_error = std::move(error);
    }
    if (first_error) std::rethrow_exception(first_error);
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      // Drain-on-stop: queued work still runs, so Post() never loses
      // tasks to destruction.
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Post(std::function<void()> task) {
  Enqueue([t = std::move(task)] {
    try {
      t();
    } catch (const std::exception& e) {
      PMCORR_LOG(kError) << "ThreadPool::Post task threw: " << e.what();
    } catch (...) {
      PMCORR_LOG(kError) << "ThreadPool::Post task threw a non-exception";
    }
  });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t threads = workers_.size();
  if (count <= 2 || threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::size_t chunks = std::min(count, threads * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  const std::size_t scheduled = (count + chunk_size - 1) / chunk_size;

  auto state = std::make_shared<JoinState>(scheduled);
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, count);
    Enqueue([state, &fn, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        state->RecordError(begin, std::current_exception());
      }
      state->TaskDone();
    });
  }
  state->Wait();
}

std::size_t ThreadPool::ShardCountFor(std::size_t count,
                                      std::size_t max_shards) const {
  if (count == 0) return 0;
  const std::size_t limit = max_shards == 0 ? workers_.size() : max_shards;
  return std::min(count, std::max<std::size_t>(1, limit));
}

void ThreadPool::ParallelShards(
    std::size_t count, const std::function<void(const ShardRange&)>& fn,
    std::size_t max_shards) {
  const std::size_t shards = ShardCountFor(count, max_shards);
  if (shards == 0) return;
  // Spread count over shards so sizes differ by at most one:
  // the first `count % shards` shards take one extra index.
  const std::size_t base = count / shards;
  const std::size_t extra = count % shards;
  auto range_of = [&](std::size_t s) {
    ShardRange r;
    r.index = s;
    r.count = shards;
    r.begin = s * base + std::min(s, extra);
    r.end = r.begin + base + (s < extra ? 1 : 0);
    return r;
  };

  if (shards == 1 || workers_.size() <= 1) {
    for (std::size_t s = 0; s < shards; ++s) fn(range_of(s));
    return;
  }

  auto state = std::make_shared<JoinState>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardRange r = range_of(s);
    Enqueue([state, &fn, r] {
      try {
        fn(r);
      } catch (...) {
        state->RecordError(r.begin, std::current_exception());
      }
      state->TaskDone();
    });
  }
  state->Wait();
}

}  // namespace pmcorr
