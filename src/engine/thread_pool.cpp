#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pmcorr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t threads = workers_.size();
  if (count <= 2 || threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::size_t chunks = std::min(count, threads * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  // Count the chunks before scheduling anything: a task that finishes
  // before the counter is primed must not underflow it.
  const std::size_t scheduled = (count + chunk_size - 1) / chunk_size;
  std::atomic<std::size_t> remaining{scheduled};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, count);
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> done_lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> done_lock(done_mutex);
  done_cv.wait(done_lock, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace pmcorr
