#include "engine/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/logging.h"

namespace pmcorr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  mutex_.Lock();
  while (true) {
    while (!(stop_ || !tasks_.empty() ||
             (region_.active && region_.next < region_.shards))) {
      cv_.Wait(mutex_);
    }
    // An active region with unclaimed shards takes priority over the
    // queue: a fork/join caller is blocked on it right now.
    if (region_.active && region_.next < region_.shards) {
      RunRegionShards();
      continue;
    }
    // Drain-on-stop: queued work still runs, so Post() never loses
    // tasks to destruction.
    if (stop_ && tasks_.empty()) {
      mutex_.Unlock();
      return;
    }
    {
      // Inner scope so the task (and anything it captured) is destroyed
      // before the lock is retaken, exactly as before the conversion to
      // explicit Lock/Unlock.
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop();
      mutex_.Unlock();
      task();
    }
    mutex_.Lock();
  }
}

ShardRange ThreadPool::RegionRange(std::size_t shard) const {
  // Spread count over shards so sizes differ by at most one: the first
  // `count % shards` shards take one extra index.
  ShardRange r;
  r.index = shard;
  r.count = region_.shards;
  r.begin = shard * region_.base + std::min(shard, region_.extra);
  r.end = r.begin + region_.base + (shard < region_.extra ? 1 : 0);
  return r;
}

void ThreadPool::RunRegionShards() {
  ++region_.participants;
  while (region_.active && region_.next < region_.shards) {
    const std::size_t shard = region_.next++;
    const ShardRange range = RegionRange(shard);
    ShardTaskFn fn = region_.fn;
    void* ctx = region_.ctx;
    mutex_.Unlock();
    std::exception_ptr error;
    try {
      fn(ctx, range);
    } catch (...) {
      error = std::current_exception();
    }
    mutex_.Lock();
    if (error && (!region_.error || range.begin < region_.error_begin)) {
      // First failure by range position, so the rethrown exception does
      // not depend on scheduling order.
      region_.error = std::move(error);
      region_.error_begin = range.begin;
    }
    if (--region_.remaining == 0) region_cv_.NotifyAll();
  }
  if (--region_.participants == 0) region_cv_.NotifyAll();
}

void ThreadPool::ParallelShardsStatic(std::size_t count, ShardTaskFn fn,
                                      void* ctx, std::size_t max_shards) {
  const std::size_t shards = ShardCountFor(count, max_shards);
  if (shards == 0) return;
  const std::size_t base = count / shards;
  const std::size_t extra = count % shards;
  if (shards == 1 || workers_.size() <= 1) {
    for (std::size_t s = 0; s < shards; ++s) {
      ShardRange r;
      r.index = s;
      r.count = shards;
      r.begin = s * base + std::min(s, extra);
      r.end = r.begin + base + (s < extra ? 1 : 0);
      fn(ctx, r);
    }
    return;
  }

  mutex_.Lock();
  // One region at a time; a second external caller waits for the block
  // to be fully released (no thread still inside RunRegionShards).
  while (!(!region_.active && region_.participants == 0)) {
    region_cv_.Wait(mutex_);
  }
  region_.fn = fn;
  region_.ctx = ctx;
  region_.shards = shards;
  region_.base = base;
  region_.extra = extra;
  region_.next = 0;
  region_.remaining = shards;
  region_.error = nullptr;
  region_.error_begin = 0;
  region_.active = true;
  cv_.NotifyAll();
  // The caller participates too — on a saturated pool it would otherwise
  // just block, and on a single-core box it typically runs every shard.
  RunRegionShards();
  while (!(region_.remaining == 0 && region_.participants == 0)) {
    region_cv_.Wait(mutex_);
  }
  region_.active = false;
  std::exception_ptr error = std::move(region_.error);
  mutex_.Unlock();
  region_cv_.NotifyAll();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Post(std::function<void()> task) {
  Enqueue([t = std::move(task)] {
    try {
      t();
    } catch (const std::exception& e) {
      PMCORR_LOG(kError) << "ThreadPool::Post task threw: " << e.what();
    } catch (...) {
      PMCORR_LOG(kError) << "ThreadPool::Post task threw a non-exception";
    }
  });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t threads = workers_.size();
  if (count <= 2 || threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // 4 chunks per thread (claimed dynamically) for load balance; the
  // trampoline keeps the dispatch allocation-free.
  ParallelShardsStatic(
      count,
      [](void* ctx, const ShardRange& r) {
        const auto& f =
            *static_cast<const std::function<void(std::size_t)>*>(ctx);
        for (std::size_t i = r.begin; i < r.end; ++i) f(i);
      },
      const_cast<void*>(static_cast<const void*>(&fn)), threads * 4);
}

std::size_t ThreadPool::ShardCountFor(std::size_t count,
                                      std::size_t max_shards) const {
  if (count == 0) return 0;
  const std::size_t limit = max_shards == 0 ? workers_.size() : max_shards;
  return std::min(count, std::max<std::size_t>(1, limit));
}

void ThreadPool::ParallelShards(
    std::size_t count, const std::function<void(const ShardRange&)>& fn,
    std::size_t max_shards) {
  ParallelShardsStatic(
      count,
      [](void* ctx, const ShardRange& r) {
        (*static_cast<const std::function<void(const ShardRange&)>*>(ctx))(r);
      },
      const_cast<void*>(static_cast<const void*>(&fn)), max_shards);
}

}  // namespace pmcorr
