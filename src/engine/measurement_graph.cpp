#include "engine/measurement_graph.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace pmcorr {

MeasurementGraph MeasurementGraph::FullMesh(std::size_t measurement_count) {
  std::vector<PairId> pairs;
  pairs.reserve(measurement_count * (measurement_count - 1) / 2);
  for (std::size_t a = 0; a < measurement_count; ++a) {
    for (std::size_t b = a + 1; b < measurement_count; ++b) {
      pairs.emplace_back(MeasurementId(static_cast<std::int32_t>(a)),
                         MeasurementId(static_cast<std::int32_t>(b)));
    }
  }
  return FromPairs(measurement_count, std::move(pairs));
}

MeasurementGraph MeasurementGraph::FromPairs(std::size_t measurement_count,
                                             std::vector<PairId> pairs) {
  std::set<PairId> seen;
  for (const PairId& p : pairs) {
    if (!p.valid()) {
      throw std::invalid_argument("MeasurementGraph: invalid pair");
    }
    if (static_cast<std::size_t>(p.b.value) >= measurement_count) {
      throw std::invalid_argument("MeasurementGraph: pair out of range");
    }
    if (!seen.insert(p).second) {
      throw std::invalid_argument("MeasurementGraph: duplicate pair");
    }
  }
  MeasurementGraph graph;
  graph.pairs_ = std::move(pairs);
  graph.pairs_of_.resize(measurement_count);
  graph.Index();
  return graph;
}

MeasurementGraph MeasurementGraph::Neighborhood(const MeasurementFrame& frame,
                                                std::size_t remote_partners,
                                                std::uint64_t seed) {
  const std::size_t l = frame.MeasurementCount();
  std::set<PairId> edges;

  // Machine-local cliques: correlations "among measurements from the same
  // machine".
  for (MachineId machine : frame.Machines()) {
    const auto local = frame.MeasurementsOn(machine);
    for (std::size_t i = 0; i < local.size(); ++i) {
      for (std::size_t j = i + 1; j < local.size(); ++j) {
        edges.insert(PairId(local[i], local[j]));
      }
    }
  }

  // Cross-machine partners: correlations "across different machines,
  // because the whole system is usually affected by the number of user
  // requests".
  Rng rng(CombineSeed(seed, 0x96a9));
  for (std::size_t a = 0; a < l; ++a) {
    const MachineId home = frame.Info(MeasurementId(
        static_cast<std::int32_t>(a))).machine;
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < remote_partners && attempts < 40 * (remote_partners + 1)) {
      ++attempts;
      const auto b = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(l) - 1));
      if (b == a) continue;
      const MeasurementId mb(static_cast<std::int32_t>(b));
      if (frame.Info(mb).machine == home) continue;
      if (edges.insert(PairId(MeasurementId(static_cast<std::int32_t>(a)), mb))
              .second) {
        ++added;
      }
    }
  }

  MeasurementGraph graph;
  graph.pairs_.assign(edges.begin(), edges.end());
  graph.pairs_of_.resize(l);
  graph.Index();
  return graph;
}

MeasurementGraph MeasurementGraph::ByAssociation(const MeasurementFrame& frame,
                                                 double min_abs_spearman,
                                                 std::size_t max_partners) {
  const std::size_t l = frame.MeasurementCount();
  if (l < 2) {
    throw std::invalid_argument(
        "MeasurementGraph::ByAssociation: need at least two measurements");
  }
  max_partners = std::max<std::size_t>(1, max_partners);

  // Pairwise |Spearman| (symmetric; nullopt-safe: degenerate pairs get 0).
  std::vector<double> assoc(l * l, 0.0);
  for (std::size_t a = 0; a < l; ++a) {
    for (std::size_t b = a + 1; b < l; ++b) {
      const auto rho = SpearmanCorrelation(
          frame.Series(MeasurementId(static_cast<std::int32_t>(a))).Values(),
          frame.Series(MeasurementId(static_cast<std::int32_t>(b))).Values());
      const double strength = rho ? std::fabs(*rho) : 0.0;
      assoc[a * l + b] = strength;
      assoc[b * l + a] = strength;
    }
  }

  std::set<PairId> edges;
  for (std::size_t a = 0; a < l; ++a) {
    // Partners sorted by strength descending, id ascending on ties.
    std::vector<std::size_t> order;
    order.reserve(l - 1);
    for (std::size_t b = 0; b < l; ++b) {
      if (b != a) order.push_back(b);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      if (assoc[a * l + x] != assoc[a * l + y]) {
        return assoc[a * l + x] > assoc[a * l + y];
      }
      return x < y;
    });
    std::size_t added = 0;
    for (std::size_t b : order) {
      if (added >= max_partners) break;
      // Always keep the single best partner so no node is isolated.
      if (added > 0 && assoc[a * l + b] < min_abs_spearman) break;
      edges.insert(PairId(MeasurementId(static_cast<std::int32_t>(a)),
                          MeasurementId(static_cast<std::int32_t>(b))));
      ++added;
    }
  }

  MeasurementGraph graph;
  graph.pairs_.assign(edges.begin(), edges.end());
  graph.pairs_of_.resize(l);
  graph.Index();
  return graph;
}

std::size_t MeasurementGraph::AddPair(PairId pair) {
  if (!pair.valid()) {
    throw std::invalid_argument("MeasurementGraph::AddPair: invalid pair");
  }
  if (static_cast<std::size_t>(pair.b.value) >= pairs_of_.size()) {
    throw std::invalid_argument("MeasurementGraph::AddPair: pair out of range");
  }
  if (std::find(pairs_.begin(), pairs_.end(), pair) != pairs_.end()) {
    throw std::invalid_argument("MeasurementGraph::AddPair: duplicate pair");
  }
  const std::size_t index = pairs_.size();
  pairs_.push_back(pair);
  pairs_of_[static_cast<std::size_t>(pair.a.value)].push_back(index);
  pairs_of_[static_cast<std::size_t>(pair.b.value)].push_back(index);
  return index;
}

std::span<const std::size_t> MeasurementGraph::PairsOf(MeasurementId a) const {
  return pairs_of_.at(static_cast<std::size_t>(a.value));
}

void MeasurementGraph::Index() {
  for (auto& v : pairs_of_) v.clear();
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    pairs_of_[static_cast<std::size_t>(pairs_[i].a.value)].push_back(i);
    pairs_of_[static_cast<std::size_t>(pairs_[i].b.value)].push_back(i);
  }
}

}  // namespace pmcorr
