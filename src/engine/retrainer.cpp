#include "engine/retrainer.h"

#include <utility>
#include <vector>

namespace pmcorr {

RollingPairRetrainer::RollingPairRetrainer(
    std::span<const double> x, std::span<const double> y,
    const ModelConfig& model_config, const RetrainerConfig& retrainer_config)
    : model_config_(model_config),
      config_(retrainer_config),
      model_(PairModel::Learn(x, y, model_config)) {
  const std::size_t keep = std::min(x.size(), config_.window_samples);
  for (std::size_t i = x.size() - keep; i < x.size(); ++i) {
    window_x_.push_back(x[i]);
    window_y_.push_back(y[i]);
  }
  if (config_.background) {
    worker_ = std::thread(&RollingPairRetrainer::WorkerLoop, this);
  }
}

RollingPairRetrainer::~RollingPairRetrainer() {
  if (worker_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    worker_.join();
  }
}

PairModel RollingPairRetrainer::Rebuild(std::span<const double> x,
                                        std::span<const double> y) {
  if (config_.rebuild_override) {
    return config_.rebuild_override(x, y, model_config_);
  }
  return PairModel::Learn(x, y, model_config_);
}

std::int64_t RollingPairRetrainer::NowNs() const {
  return config_.clock ? config_.clock() : MonotonicNowNs();
}

StepOutcome RollingPairRetrainer::Step(double x, double y) {
  // Adopt a finished background rebuild before scoring, so the sample is
  // judged by exactly one model and the swap lands on a sample boundary.
  // The watchdog check precedes adoption: a wedged rebuild is written
  // off at a sample boundary too.
  if (config_.background) {
    CheckWatchdog();
    AdoptPendingIfReady();
  }
  const StepOutcome out = model_.Step(x, y);
  window_x_.push_back(x);
  window_y_.push_back(y);
  while (window_x_.size() > config_.window_samples) {
    window_x_.pop_front();
    window_y_.pop_front();
  }
  ++since_rebuild_;
  MaybeRebuild();
  return out;
}

void RollingPairRetrainer::MaybeRebuild() {
  if (since_rebuild_ < config_.interval_samples) return;
  if (window_x_.size() < config_.min_samples) return;
  if (!config_.background) {
    const std::vector<double> xs(window_x_.begin(), window_x_.end());
    const std::vector<double> ys(window_y_.begin(), window_y_.end());
    try {
      model_ = Rebuild(xs, ys);
    } catch (const std::exception& e) {
      // Keep serving the current model; count the failure and let the
      // cadence schedule the next attempt from scratch.
      const std::lock_guard<std::mutex> lock(mu_);
      ++failed_rebuilds_;
      last_error_ = e.what();
      since_rebuild_ = 0;
      return;
    }
    since_rebuild_ = 0;
    ++rebuilds_;
    return;
  }
  // Background mode: hand the worker a snapshot of the window. At most
  // one rebuild is in flight or awaiting adoption — if the cadence fires
  // again before then, keep deferring to the next Step (since_rebuild_
  // stays past the interval, so this re-checks every sample). A rebuild
  // the watchdog abandoned no longer occupies the slot: a fresh job may
  // queue behind the wedged one.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (job_ready_ || (busy_ && !abandoned_current_) || pending_) return;
    job_x_.assign(window_x_.begin(), window_x_.end());
    job_y_.assign(window_y_.begin(), window_y_.end());
    job_ready_ = true;
  }
  job_cv_.notify_one();
  since_rebuild_ = 0;
}

void RollingPairRetrainer::CheckWatchdog() {
  if (config_.watchdog_ms <= 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (!busy_ || abandoned_current_) return;
  const std::int64_t limit_ns = config_.watchdog_ms * 1'000'000;
  if (NowNs() - busy_since_ns_ < limit_ns) return;
  // The rebuild has been grinding past its deadline. The thread itself
  // cannot be killed; what the watchdog does is write the attempt off —
  // its eventual result is discarded, the slot reopens for the next
  // cadence, and waiters stop waiting on it.
  abandoned_current_ = true;
  ++abandoned_rebuilds_;
  done_cv_.notify_all();
}

void RollingPairRetrainer::AdoptPendingIfReady() {
  std::unique_ptr<PairModel> fresh;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fresh = std::move(pending_);
  }
  if (!fresh) return;
  model_ = std::move(*fresh);
  ++rebuilds_;
}

bool RollingPairRetrainer::RebuildInFlight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return job_ready_ || (busy_ && !abandoned_current_);
}

std::size_t RollingPairRetrainer::FailedRebuilds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return failed_rebuilds_;
}

std::size_t RollingPairRetrainer::AbandonedRebuilds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return abandoned_rebuilds_;
}

std::string RollingPairRetrainer::LastRebuildError() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void RollingPairRetrainer::WaitForPendingRebuild() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [&] { return !job_ready_ && (!busy_ || abandoned_current_); });
}

void RollingPairRetrainer::WorkerLoop() {
  for (;;) {
    std::vector<double> xs;
    std::vector<double> ys;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || job_ready_; });
      if (stop_) return;
      job_ready_ = false;
      busy_ = true;
      abandoned_current_ = false;
      busy_since_ns_ = NowNs();
      xs = std::move(job_x_);
      ys = std::move(job_y_);
    }
    // A throwing rebuild must not escape the worker thread (that would
    // std::terminate the process): it becomes a counted failure, and
    // the serving model keeps serving.
    std::unique_ptr<PairModel> fresh;
    std::string error;
    try {
      fresh = std::make_unique<PairModel>(Rebuild(xs, ys));
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "rebuild threw a non-std::exception";
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error.empty()) {
        ++failed_rebuilds_;
        last_error_ = error;
      } else if (!abandoned_current_) {
        pending_ = std::move(fresh);
      }
      // An abandoned rebuild's model (if it produced one) is discarded:
      // the watchdog already wrote this attempt off.
      abandoned_current_ = false;
      busy_ = false;
    }
    done_cv_.notify_all();
  }
}

}  // namespace pmcorr
