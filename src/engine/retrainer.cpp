#include "engine/retrainer.h"

#include <utility>
#include <vector>

namespace pmcorr {

RollingPairRetrainer::RollingPairRetrainer(
    std::span<const double> x, std::span<const double> y,
    const ModelConfig& model_config, const RetrainerConfig& retrainer_config)
    : model_config_(model_config), config_(retrainer_config) {
  if (config_.background) {
    RetrainPoolConfig pool_config;
    pool_config.threads = 1;
    pool_config.window_samples = config_.window_samples;
    pool_config.interval_samples = config_.interval_samples;
    pool_config.min_samples = config_.min_samples;
    pool_config.watchdog_ms = config_.watchdog_ms;
    pool_config.clock = config_.clock;
    pool_config.rebuild_override = config_.rebuild_override;
    pool_ = std::make_unique<RetrainPool>(model_config_, pool_config);
    pool_->AddPair(x, y);
    return;
  }
  model_ = PairModel::Learn(x, y, model_config_);
  const std::size_t keep = std::min(x.size(), config_.window_samples);
  for (std::size_t i = x.size() - keep; i < x.size(); ++i) {
    window_x_.push_back(x[i]);
    window_y_.push_back(y[i]);
  }
}

RollingPairRetrainer::~RollingPairRetrainer() = default;

PairModel RollingPairRetrainer::Rebuild(std::span<const double> x,
                                        std::span<const double> y) {
  if (config_.rebuild_override) {
    return config_.rebuild_override(x, y, model_config_);
  }
  return PairModel::Learn(x, y, model_config_);
}

StepOutcome RollingPairRetrainer::Step(double x, double y) {
  if (pool_) return pool_->Step(0, x, y);
  const StepOutcome out = model_.Step(x, y);
  window_x_.push_back(x);
  window_y_.push_back(y);
  while (window_x_.size() > config_.window_samples) {
    window_x_.pop_front();
    window_y_.pop_front();
  }
  ++since_rebuild_;
  MaybeRebuildSync();
  return out;
}

void RollingPairRetrainer::MaybeRebuildSync() {
  if (since_rebuild_ < config_.interval_samples) return;
  if (window_x_.size() < config_.min_samples) return;
  const std::vector<double> xs(window_x_.begin(), window_x_.end());
  const std::vector<double> ys(window_y_.begin(), window_y_.end());
  try {
    model_ = Rebuild(xs, ys);
  } catch (const std::exception& e) {
    // Keep serving the current model; count the failure and let the
    // cadence schedule the next attempt from scratch.
    const MutexLock lock(mu_);
    ++failed_rebuilds_;
    last_error_ = e.what();
    since_rebuild_ = 0;
    return;
  }
  since_rebuild_ = 0;
  ++rebuilds_;
}

bool RollingPairRetrainer::RebuildInFlight() const {
  return pool_ ? pool_->RebuildInFlight(0) : false;
}

std::size_t RollingPairRetrainer::FailedRebuilds() const {
  if (pool_) return pool_->FailedRebuilds(0);
  const MutexLock lock(mu_);
  return failed_rebuilds_;
}

std::size_t RollingPairRetrainer::AbandonedRebuilds() const {
  return pool_ ? pool_->AbandonedRebuilds(0) : 0;
}

std::string RollingPairRetrainer::LastRebuildError() const {
  if (pool_) return pool_->LastRebuildError(0);
  const MutexLock lock(mu_);
  return last_error_;
}

void RollingPairRetrainer::WaitForPendingRebuild() {
  if (pool_) pool_->WaitForPair(0);
}

}  // namespace pmcorr
