#include "engine/retrainer.h"

#include <utility>
#include <vector>

namespace pmcorr {

RollingPairRetrainer::RollingPairRetrainer(
    std::span<const double> x, std::span<const double> y,
    const ModelConfig& model_config, const RetrainerConfig& retrainer_config)
    : model_config_(model_config),
      config_(retrainer_config),
      model_(PairModel::Learn(x, y, model_config)) {
  const std::size_t keep = std::min(x.size(), config_.window_samples);
  for (std::size_t i = x.size() - keep; i < x.size(); ++i) {
    window_x_.push_back(x[i]);
    window_y_.push_back(y[i]);
  }
  if (config_.background) {
    worker_ = std::thread(&RollingPairRetrainer::WorkerLoop, this);
  }
}

RollingPairRetrainer::~RollingPairRetrainer() {
  if (worker_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    worker_.join();
  }
}

StepOutcome RollingPairRetrainer::Step(double x, double y) {
  // Adopt a finished background rebuild before scoring, so the sample is
  // judged by exactly one model and the swap lands on a sample boundary.
  if (config_.background) AdoptPendingIfReady();
  const StepOutcome out = model_.Step(x, y);
  window_x_.push_back(x);
  window_y_.push_back(y);
  while (window_x_.size() > config_.window_samples) {
    window_x_.pop_front();
    window_y_.pop_front();
  }
  ++since_rebuild_;
  MaybeRebuild();
  return out;
}

void RollingPairRetrainer::MaybeRebuild() {
  if (since_rebuild_ < config_.interval_samples) return;
  if (window_x_.size() < config_.min_samples) return;
  if (!config_.background) {
    const std::vector<double> xs(window_x_.begin(), window_x_.end());
    const std::vector<double> ys(window_y_.begin(), window_y_.end());
    model_ = PairModel::Learn(xs, ys, model_config_);
    since_rebuild_ = 0;
    ++rebuilds_;
    return;
  }
  // Background mode: hand the worker a snapshot of the window. At most
  // one rebuild is in flight or awaiting adoption — if the cadence fires
  // again before then, keep deferring to the next Step (since_rebuild_
  // stays past the interval, so this re-checks every sample).
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (job_ready_ || busy_ || pending_) return;
    job_x_.assign(window_x_.begin(), window_x_.end());
    job_y_.assign(window_y_.begin(), window_y_.end());
    job_ready_ = true;
  }
  job_cv_.notify_one();
  since_rebuild_ = 0;
}

void RollingPairRetrainer::AdoptPendingIfReady() {
  std::unique_ptr<PairModel> fresh;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fresh = std::move(pending_);
  }
  if (!fresh) return;
  model_ = std::move(*fresh);
  ++rebuilds_;
}

bool RollingPairRetrainer::RebuildInFlight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return job_ready_ || busy_;
}

void RollingPairRetrainer::WaitForPendingRebuild() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return !job_ready_ && !busy_; });
}

void RollingPairRetrainer::WorkerLoop() {
  for (;;) {
    std::vector<double> xs;
    std::vector<double> ys;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || job_ready_; });
      if (stop_) return;
      job_ready_ = false;
      busy_ = true;
      xs = std::move(job_x_);
      ys = std::move(job_y_);
    }
    PairModel fresh = PairModel::Learn(xs, ys, model_config_);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_ = std::make_unique<PairModel>(std::move(fresh));
      busy_ = false;
    }
    done_cv_.notify_all();
  }
}

}  // namespace pmcorr
