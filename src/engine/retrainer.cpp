#include "engine/retrainer.h"

#include <vector>

namespace pmcorr {

RollingPairRetrainer::RollingPairRetrainer(
    std::span<const double> x, std::span<const double> y,
    const ModelConfig& model_config, const RetrainerConfig& retrainer_config)
    : model_config_(model_config),
      config_(retrainer_config),
      model_(PairModel::Learn(x, y, model_config)) {
  const std::size_t keep = std::min(x.size(), config_.window_samples);
  for (std::size_t i = x.size() - keep; i < x.size(); ++i) {
    window_x_.push_back(x[i]);
    window_y_.push_back(y[i]);
  }
}

StepOutcome RollingPairRetrainer::Step(double x, double y) {
  const StepOutcome out = model_.Step(x, y);
  window_x_.push_back(x);
  window_y_.push_back(y);
  while (window_x_.size() > config_.window_samples) {
    window_x_.pop_front();
    window_y_.pop_front();
  }
  ++since_rebuild_;
  MaybeRebuild();
  return out;
}

void RollingPairRetrainer::MaybeRebuild() {
  if (since_rebuild_ < config_.interval_samples) return;
  if (window_x_.size() < config_.min_samples) return;
  const std::vector<double> xs(window_x_.begin(), window_x_.end());
  const std::vector<double> ys(window_y_.begin(), window_y_.end());
  model_ = PairModel::Learn(xs, ys, model_config_);
  since_rebuild_ = 0;
  ++rebuilds_;
}

}  // namespace pmcorr
