#include "engine/scorecard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "baselines/ewma.h"
#include "baselines/gmm.h"
#include "baselines/linear_invariant.h"
#include "baselines/subspace.h"
#include "baselines/zscore.h"
#include "engine/alarm.h"
#include "engine/monitor.h"
#include "telemetry/generator.h"

namespace pmcorr {
namespace {

/// Minimum finite training samples before a per-measurement or pairwise
/// baseline gets a detector at all — below this the fit is noise (and a
/// machine absent for the whole training period has zero).
constexpr std::size_t kMinTrainSamples = 32;

/// Days of clean history reserved for alarm calibration. One day's 2%
/// quantile rests on ~5 samples and misses the day-to-day variance of
/// the busy-hour ramps; three days steadies the per-pair bounds.
constexpr int kHoldoutDays = 3;

/// The per-scenario frames every adapter consumes: train up to the
/// holdout period, kHoldoutDays of calibration, test from June 13 on.
struct ScenarioData {
  MeasurementFrame full;
  MeasurementFrame train;
  MeasurementFrame holdout;
  MeasurementFrame test;
  std::vector<LabeledWindow> truth;
};

ScenarioData PrepareScenario(const QualityScenario& s) {
  ScenarioData d;
  d.full = GenerateTrace(s.spec);
  const TimePoint holdout_start = s.test_start - kHoldoutDays * kDay;
  d.train = d.full.SliceByTime(d.full.StartTime(), holdout_start);
  d.holdout = d.full.SliceByTime(holdout_start, s.test_start);
  d.test = d.full.SliceByTime(s.test_start, s.TraceEnd());
  if (d.train.SampleCount() < 2 || d.test.SampleCount() == 0) {
    throw std::invalid_argument("scorecard: scenario '" + s.name +
                                "' leaves no train/test samples");
  }
  d.truth.reserve(s.truth.size());
  for (const TruthWindow& w : s.truth) d.truth.push_back({w.start, w.end});
  return d;
}

std::vector<double> FiniteValues(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    if (std::isfinite(v)) out.push_back(v);
  }
  return out;
}

/// Both-finite training points of one pair.
void FinitePairPoints(std::span<const double> x, std::span<const double> y,
                      std::vector<double>& xs, std::vector<double>& ys) {
  xs.clear();
  ys.clear();
  for (std::size_t t = 0; t < x.size(); ++t) {
    if (std::isfinite(x[t]) && std::isfinite(y[t])) {
      xs.push_back(x[t]);
      ys.push_back(y[t]);
    }
  }
}

DetectionOutcome ScoreHealth(const std::vector<std::optional<double>>& health,
                             const ScenarioData& d, double threshold,
                             const ScorecardConfig& config) {
  const auto windows =
      ExtractLowScoreWindows(health, d.test.StartTime(), d.test.Period(),
                             threshold, config.min_window);
  return EvaluateDetection(windows, d.truth, config.grace);
}

/// Machine ranking from per-measurement health-like scores (higher =
/// healthier); measurements without a score are skipped, machines with
/// no scored measurement are absent — the LocalizationRankOf convention
/// then applies. Ascending by score, suspects first; ties break toward
/// lower machine ids for determinism.
std::vector<MachineScore> RankByMeasurementScores(
    const MeasurementFrame& frame,
    const std::vector<std::optional<double>>& scores) {
  std::vector<MachineScore> ranking;
  for (MachineId machine : frame.Machines()) {
    double sum = 0.0;
    std::size_t n = 0;
    for (MeasurementId mid : frame.MeasurementsOn(machine)) {
      const auto& s = scores[static_cast<std::size_t>(mid.value)];
      if (s) {
        sum += *s;
        ++n;
      }
    }
    if (n > 0) {
      ranking.push_back({machine, sum / static_cast<double>(n), n});
    }
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const MachineScore& a, const MachineScore& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.machine < b.machine;
            });
  return ranking;
}

DetectorScore Finish(std::string detector, const QualityScenario& s,
                     DetectionOutcome outcome,
                     const std::vector<MachineScore>& ranking) {
  DetectorScore score;
  score.detector = std::move(detector);
  score.outcome = outcome;
  score.ranked_machines = ranking.size();
  score.localization_rank =
      s.benign ? kRankNotApplicable
               : LocalizationRankOf(ranking, s.problem_machine);
  return score;
}

// ---------------------------------------------------------------------
// pmcorr: the paper's monitor, with the scenario's topology script
// replayed through AddPair/RetirePair. System health is the fraction of
// engaged pairs NOT raising a calibrated alarm — the paper's
// "extract alarms" step (Section 6), which stays sensitive when a fault
// breaks a handful of pairs without moving the fleet-wide mean Q.
// Localization averages Q^a over the alarming samples (the operator
// drills down during the incident); it falls back to the lifetime
// Figure 14 averages when nothing alarmed.

DetectorScore RunPmcorr(const QualityScenario& s, const ScenarioData& d,
                        const MeasurementGraph& full_graph,
                        const ScorecardConfig& config) {
  const std::size_t l = d.full.MeasurementCount();

  // Machines that join mid-run start with their pairs deferred; the
  // topology script adds them once the machine has warmed up.
  std::vector<bool> absent(l, false);
  for (const auto& change : s.topology_changes) {
    if (!change.join) continue;
    for (MeasurementId mid : d.full.MeasurementsOn(change.machine)) {
      absent[static_cast<std::size_t>(mid.value)] = true;
    }
  }
  std::vector<PairId> initial;
  for (const PairId& p : full_graph.Pairs()) {
    if (!absent[static_cast<std::size_t>(p.a.value)] &&
        !absent[static_cast<std::size_t>(p.b.value)]) {
      initial.push_back(p);
    }
  }

  MonitorConfig mc;
  mc.threads = config.threads;
  SystemMonitor monitor(d.train, MeasurementGraph::FromPairs(l, initial), mc);
  monitor.CalibrateThresholds(d.holdout, config.calibrate_fpr);
  monitor.ResetSequences();

  // Run the test period in segments split at topology-change times,
  // applying each change between segments (the monitor's serial-section
  // contract for AddPair/RetirePair).
  std::vector<TimePoint> cuts;
  for (const auto& change : s.topology_changes) {
    if (change.at > d.test.StartTime() && change.at < s.TraceEnd()) {
      cuts.push_back(change.at);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  const double threshold = 1.0 - config.pmcorr_alarm_fraction;
  std::vector<std::optional<double>> health;
  health.reserve(d.test.SampleCount());
  std::vector<double> alarm_qa_sum(l, 0.0);
  std::vector<std::size_t> alarm_qa_n(l, 0);
  // Two filters separate faults from the ambient alarm noise:
  //  * persistence — a pair counts only when it alarmed at this sample
  //    AND the previous one. Busy-hour ramps alarm many pairs for a
  //    single sample (the quantile calibration is marginal, not
  //    conditioned on rate of change); a broken correlation alarms the
  //    same pairs sample after sample.
  //  * concentration — the paper's Q^a drill-down applied to alarms:
  //    a fault concentrates on the broken measurement's pairs, while a
  //    ramp burst scatters over the fleet. Unhealth is the worst
  //    per-measurement fraction of persistently-alarming pairs, not the
  //    fleet-wide fraction, so a fault touching one measurement's
  //    handful of pairs still saturates the signal.
  std::vector<std::uint8_t> alarmed_prev, alarmed_now;
  std::vector<std::size_t> meas_engaged(l), meas_alarming(l);
  const auto run_segment = [&](TimePoint from, TimePoint to) {
    if (from >= to) return;
    for (const SystemSnapshot& snap :
         monitor.Run(d.full.SliceByTime(from, to))) {
      const auto& pairs = monitor.Graph().Pairs();
      alarmed_now.assign(snap.pair_scores.size(), 0);
      for (std::size_t i : snap.alarmed_pairs) alarmed_now[i] = 1;
      meas_engaged.assign(l, 0);
      meas_alarming.assign(l, 0);
      std::size_t engaged = 0;
      for (std::size_t i = 0; i < snap.pair_scores.size(); ++i) {
        // A sustained outlier alarms without a score (no source cell
        // after the reset), so "engaged" means scored OR alarming —
        // skipping scoreless pairs would drop exactly the pairs a hard
        // fault pushes off the grid.
        if (!snap.pair_scores[i] && alarmed_now[i] == 0) continue;
        ++engaged;
        const auto a = static_cast<std::size_t>(pairs[i].a.value);
        const auto b = static_cast<std::size_t>(pairs[i].b.value);
        ++meas_engaged[a];
        ++meas_engaged[b];
        if (alarmed_now[i] != 0 && i < alarmed_prev.size() &&
            alarmed_prev[i] != 0) {
          ++meas_alarming[a];
          ++meas_alarming[b];
        }
      }
      std::swap(alarmed_prev, alarmed_now);
      std::optional<double> h;
      std::size_t worst_m = 0;
      if (engaged > 0) {
        double worst = 0.0;
        for (std::size_t m = 0; m < l; ++m) {
          // At least two corroborating pairs: a measurement that kept a
          // single engaged pair (its others retired or quarantined)
          // would otherwise flip between concentration 0 and 1 on one
          // pair's noise.
          if (meas_engaged[m] > 0 && meas_alarming[m] >= 2) {
            const double frac = static_cast<double>(meas_alarming[m]) /
                                static_cast<double>(meas_engaged[m]);
            if (frac > worst) {
              worst = frac;
              worst_m = m;
            }
          }
        }
        h = 1.0 - worst;
      }
      // Per-sample trace of the health computation, for tuning the
      // detection rule against a scenario: which measurement's alarm
      // concentration is driving the health dip, and how wide it is.
      if (std::getenv("PMCORR_SCORECARD_DEBUG") != nullptr) {
        const char* worst_name =
            h && *h < 1.0
                ? d.full.Info(MeasurementId(static_cast<std::int32_t>(worst_m)))
                      .name.c_str()
                : "-";
        std::fprintf(stderr,
                     "dbg %zu t=%lld alarmed=%zu engaged=%zu out=%zu h=%.3f "
                     "worst=%s\n",
                     health.size(), static_cast<long long>(snap.time),
                     snap.alarmed_pairs.size(), engaged, snap.outlier_pairs,
                     h ? *h : -1.0, worst_name);
      }
      health.push_back(h);
      if (h && *h < threshold) {
        for (std::size_t m = 0; m < l; ++m) {
          if (snap.measurement_scores[m]) {
            alarm_qa_sum[m] += *snap.measurement_scores[m];
            ++alarm_qa_n[m];
          }
        }
      }
    }
  };

  TimePoint seg_start = d.test.StartTime();
  for (TimePoint cut : cuts) {
    run_segment(seg_start, cut);
    seg_start = cut;
    for (const auto& change : s.topology_changes) {
      if (change.at != cut) continue;
      if (change.join) {
        for (MeasurementId mid : d.full.MeasurementsOn(change.machine)) {
          absent[static_cast<std::size_t>(mid.value)] = false;
        }
        // Learn each new pair on the front 3/4 of the warmup slice and
        // calibrate its alarm bounds on the back 1/4 — joined pairs
        // missed the fleet-wide CalibrateThresholds pass, and
        // uncalibrated bounds alarm on every busy-hour ramp.
        const TimePoint learn_end =
            change.learn_from + 3 * (change.at - change.learn_from) / 4;
        const MeasurementFrame learn_slice =
            d.full.SliceByTime(change.learn_from, learn_end);
        const MeasurementFrame calib_slice =
            d.full.SliceByTime(learn_end, change.at);
        for (const PairId& p : full_graph.Pairs()) {
          const bool mine =
              d.full.Info(p.a).machine == change.machine ||
              d.full.Info(p.b).machine == change.machine;
          if (!mine) continue;
          // Both endpoints must be live (a pair between two still-absent
          // machines waits for its second join).
          if (absent[static_cast<std::size_t>(p.a.value)] ||
              absent[static_cast<std::size_t>(p.b.value)]) {
            continue;
          }
          PairModel model =
              PairModel::Learn(learn_slice.Series(p.a).Values(),
                               learn_slice.Series(p.b).Values(), mc.model);
          const ThresholdCalibration calibration = CalibrateOnHoldout(
              model, calib_slice.Series(p.a).Values(),
              calib_slice.Series(p.b).Values(), config.calibrate_fpr);
          model.SetAlarmThresholds(calibration.fitness_threshold,
                                   calibration.delta);
          monitor.AddPair(p, std::move(model));
        }
      } else {
        const auto& pairs = monitor.Graph().Pairs();
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          if (d.full.Info(pairs[i].a).machine == change.machine ||
              d.full.Info(pairs[i].b).machine == change.machine) {
            monitor.RetirePair(i);
          }
        }
      }
    }
  }
  run_segment(seg_start, s.TraceEnd());

  // Morphological closing: a broken correlation alarms in dense flickers
  // (an in-range sample re-anchors the sequence for a step or two), so a
  // single healthy sample between two unhealthy ones is part of the same
  // incident. Ambient bursts are isolated and unaffected.
  for (std::size_t t = 1; t + 1 < health.size(); ++t) {
    if (health[t] && *health[t] >= threshold && health[t - 1] &&
        *health[t - 1] < threshold && health[t + 1] &&
        *health[t + 1] < threshold) {
      health[t] = std::max(*health[t - 1], *health[t + 1]);
    }
  }

  const DetectionOutcome outcome = ScoreHealth(health, d, threshold, config);

  bool any_alarming = false;
  for (std::size_t m = 0; m < l; ++m) any_alarming |= alarm_qa_n[m] > 0;
  if (any_alarming) {
    std::vector<std::optional<double>> per_measurement(l);
    for (std::size_t m = 0; m < l; ++m) {
      if (alarm_qa_n[m] > 0) {
        per_measurement[m] =
            alarm_qa_sum[m] / static_cast<double>(alarm_qa_n[m]);
      }
    }
    return Finish("pmcorr", s, outcome,
                  RankByMeasurementScores(d.full, per_measurement));
  }
  const LocalizationReport report =
      Localize(monitor.Infos(), monitor.MeasurementAverages());
  return Finish("pmcorr", s, outcome, report.ranking);
}

// ---------------------------------------------------------------------
// ewma / zscore: per-measurement charts; system health is the fraction
// of non-alarming measurements, localization the per-machine alarm rate.

template <typename LearnFn, typename AlarmFn>
DetectorScore RunPerMeasurement(const std::string& name,
                                const QualityScenario& s,
                                const ScenarioData& d,
                                const ScorecardConfig& config, LearnFn learn,
                                AlarmFn alarm) {
  const std::size_t l = d.full.MeasurementCount();
  const std::size_t n = d.test.SampleCount();
  std::vector<bool> armed(l, false);
  for (std::size_t m = 0; m < l; ++m) {
    const MeasurementId mid(static_cast<std::int32_t>(m));
    const auto finite = FiniteValues(d.train.Series(mid).Values());
    if (finite.size() >= kMinTrainSamples) {
      learn(m, finite);
      armed[m] = true;
    }
  }

  std::vector<std::size_t> alarms_of(l, 0), votes_of(l, 0);
  std::vector<std::optional<double>> health(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::size_t voting = 0;
    std::size_t alarming = 0;
    for (std::size_t m = 0; m < l; ++m) {
      if (!armed[m]) continue;
      const double v =
          d.test.Value(MeasurementId(static_cast<std::int32_t>(m)), t);
      if (!std::isfinite(v)) continue;
      ++voting;
      ++votes_of[m];
      if (alarm(m, v)) {
        ++alarming;
        ++alarms_of[m];
      }
    }
    if (voting > 0) {
      health[t] =
          1.0 - static_cast<double>(alarming) / static_cast<double>(voting);
    }
  }

  const DetectionOutcome outcome =
      ScoreHealth(health, d, 1.0 - config.alarm_fraction, config);
  std::vector<std::optional<double>> per_measurement(l);
  for (std::size_t m = 0; m < l; ++m) {
    if (votes_of[m] > 0) {
      per_measurement[m] = 1.0 - static_cast<double>(alarms_of[m]) /
                                     static_cast<double>(votes_of[m]);
    }
  }
  return Finish(name, s, outcome,
                RankByMeasurementScores(d.full, per_measurement));
}

DetectorScore RunEwma(const QualityScenario& s, const ScenarioData& d,
                      const ScorecardConfig& config) {
  std::vector<std::optional<EwmaDetector>> detectors(
      d.full.MeasurementCount());
  return RunPerMeasurement(
      "ewma", s, d, config,
      [&](std::size_t m, const std::vector<double>& finite) {
        detectors[m] = EwmaDetector::Learn(finite);
      },
      [&](std::size_t m, double v) { return detectors[m]->Observe(v).alarm; });
}

DetectorScore RunZScore(const QualityScenario& s, const ScenarioData& d,
                        const ScorecardConfig& config) {
  std::vector<std::optional<ZScoreDetector>> detectors(
      d.full.MeasurementCount());
  return RunPerMeasurement(
      "zscore", s, d, config,
      [&](std::size_t m, const std::vector<double>& finite) {
        detectors[m] = ZScoreDetector::Learn(finite);
      },
      [&](std::size_t m, double v) { return detectors[m]->Alarm(v); });
}

// ---------------------------------------------------------------------
// gmm / linear_invariant: pairwise models over the same pair graph as
// pmcorr; system health is the fraction of engaged pairs scoring above
// pair_score_threshold (one broken machine's pairs must register even
// when the fleet-wide mean barely moves), localization the mean score
// of a measurement's pairs aggregated per machine.

template <typename FitFn, typename ScoreFn>
DetectorScore RunPairwise(const std::string& name, const QualityScenario& s,
                          const ScenarioData& d,
                          const MeasurementGraph& graph,
                          const ScorecardConfig& config,
                          std::size_t min_train_points, FitFn fit,
                          ScoreFn score_point) {
  const std::size_t l = d.full.MeasurementCount();
  const std::size_t n = d.test.SampleCount();
  const auto& pairs = graph.Pairs();
  std::vector<bool> armed(pairs.size(), false);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    FinitePairPoints(d.train.Series(pairs[i].a).Values(),
                     d.train.Series(pairs[i].b).Values(), xs, ys);
    if (xs.size() >= min_train_points) armed[i] = fit(i, xs, ys);
  }

  std::vector<double> score_sum(l, 0.0);
  std::vector<std::size_t> score_n(l, 0);
  std::vector<std::optional<double>> health(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::size_t alarming = 0;
    std::size_t engaged = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (!armed[i]) continue;
      const double x = d.test.Value(pairs[i].a, t);
      const double y = d.test.Value(pairs[i].b, t);
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      const double sc = score_point(i, x, y);
      ++engaged;
      if (sc < config.pair_score_threshold) ++alarming;
      score_sum[static_cast<std::size_t>(pairs[i].a.value)] += sc;
      ++score_n[static_cast<std::size_t>(pairs[i].a.value)];
      score_sum[static_cast<std::size_t>(pairs[i].b.value)] += sc;
      ++score_n[static_cast<std::size_t>(pairs[i].b.value)];
    }
    if (engaged > 0) {
      health[t] =
          1.0 - static_cast<double>(alarming) / static_cast<double>(engaged);
    }
  }

  const DetectionOutcome outcome =
      ScoreHealth(health, d, 1.0 - config.alarm_fraction, config);
  std::vector<std::optional<double>> per_measurement(l);
  for (std::size_t m = 0; m < l; ++m) {
    if (score_n[m] > 0) {
      per_measurement[m] = score_sum[m] / static_cast<double>(score_n[m]);
    }
  }
  return Finish(name, s, outcome,
                RankByMeasurementScores(d.full, per_measurement));
}

DetectorScore RunGmm(const QualityScenario& s, const ScenarioData& d,
                     const MeasurementGraph& graph,
                     const ScorecardConfig& config) {
  std::vector<std::optional<GaussianMixtureModel>> models(graph.PairCount());
  return RunPairwise(
      "gmm", s, d, graph, config, 2 * kMinTrainSamples,
      [&](std::size_t i, const std::vector<double>& xs,
          const std::vector<double>& ys) {
        models[i] = GaussianMixtureModel::Fit(xs, ys);
        return true;
      },
      [&](std::size_t i, double x, double y) {
        return models[i]->Score(x, y);
      });
}

DetectorScore RunLinearInvariant(const QualityScenario& s,
                                 const ScenarioData& d,
                                 const MeasurementGraph& graph,
                                 const ScorecardConfig& config) {
  std::vector<std::optional<LinearInvariant>> invariants(graph.PairCount());
  return RunPairwise(
      "linear_invariant", s, d, graph, config, kMinTrainSamples,
      [&](std::size_t i, const std::vector<double>& xs,
          const std::vector<double>& ys) {
        // Learn rejects pairs without a linear invariant (low R^2) —
        // exactly the paper's motivating gap; those pairs stay unarmed.
        invariants[i] = LinearInvariant::Learn(xs, ys);
        return invariants[i].has_value();
      },
      [&](std::size_t i, double x, double y) {
        return invariants[i]->Evaluate(x, y).score;
      });
}

// ---------------------------------------------------------------------
// subspace: one system-level SPE per sample. NaNs (absent machines,
// dropouts) are imputed with the per-measurement training mean — the
// standard PCA practice, and the graceful-degradation convention here.

DetectorScore RunSubspace(const QualityScenario& s, const ScenarioData& d,
                          const ScorecardConfig& config) {
  const std::size_t l = d.full.MeasurementCount();
  const std::size_t n = d.test.SampleCount();

  std::vector<double> train_mean(l, 0.0);
  MeasurementFrame sanitized(d.train.StartTime(), d.train.Period());
  for (std::size_t m = 0; m < l; ++m) {
    const MeasurementId mid(static_cast<std::int32_t>(m));
    std::vector<double> values(d.train.Series(mid).Values().begin(),
                               d.train.Series(mid).Values().end());
    const auto finite = FiniteValues(values);
    if (!finite.empty()) {
      double sum = 0.0;
      for (double v : finite) sum += v;
      train_mean[m] = sum / static_cast<double>(finite.size());
    }
    for (double& v : values) {
      if (!std::isfinite(v)) v = train_mean[m];
    }
    sanitized.Add(d.train.Info(mid),
                  TimeSeries(d.train.StartTime(), d.train.Period(),
                             std::move(values)));
  }
  const SubspaceDetector detector = SubspaceDetector::Fit(sanitized);
  const double thr = detector.Threshold();

  std::vector<double> contrib_sum(l, 0.0);
  std::vector<double> contrib_sum_all(l, 0.0);
  std::size_t alarming_samples = 0;
  std::vector<std::optional<double>> health(n);
  std::vector<double> row(l);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t m = 0; m < l; ++m) {
      const double v =
          d.test.Value(MeasurementId(static_cast<std::int32_t>(m)), t);
      row[m] = std::isfinite(v) ? v : train_mean[m];
    }
    const double spe = detector.Spe(row);
    // Graded health: 1 at SPE 0, 0.5 exactly at the fitted boundary —
    // so config.subspace_threshold = 0.5 alarms when SPE crosses it.
    health[t] = thr > 0.0 ? thr / (thr + spe) : (spe > 0.0 ? 0.0 : 1.0);
    const bool alarming = spe > thr;
    const auto contributions = detector.ResidualContributions(row);
    for (std::size_t m = 0; m < l; ++m) {
      contrib_sum_all[m] += contributions[m];
      if (alarming) contrib_sum[m] += contributions[m];
    }
    if (alarming) ++alarming_samples;
  }

  const DetectionOutcome outcome =
      ScoreHealth(health, d, config.subspace_threshold, config);

  // Rank by mean residual contribution over the alarming samples (all
  // samples when none alarmed): biggest contributor = prime suspect,
  // expressed as a health-like score so the ascending sort applies.
  const auto& sums = alarming_samples > 0 ? contrib_sum : contrib_sum_all;
  const double denom = static_cast<double>(
      alarming_samples > 0 ? alarming_samples : std::max<std::size_t>(1, n));
  std::vector<std::optional<double>> per_measurement(l);
  for (std::size_t m = 0; m < l; ++m) {
    per_measurement[m] = 1.0 / (1.0 + sums[m] / denom);
  }
  return Finish("subspace", s, outcome,
                RankByMeasurementScores(d.full, per_measurement));
}

void AppendNumber(std::ostringstream& out, const std::string& key,
                  double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out << ",\n  \"" << key << "\": " << buf;
}

void AppendInteger(std::ostringstream& out, const std::string& key,
                   long long value) {
  out << ",\n  \"" << key << "\": " << value;
}

}  // namespace

double LocalizationRankOf(const std::vector<MachineScore>& ranking,
                          MachineId machine) {
  if (!machine.valid()) return kRankNotApplicable;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].machine == machine) return static_cast<double>(i + 1);
  }
  // Absent from the ranking: every measurement disengaged for the whole
  // run. Pinned to "after every ranked machine" so degraded-mode runs
  // produce a defined, stable number instead of an accidental one.
  return static_cast<double>(ranking.size() + 1);
}

const std::vector<std::string>& ScorecardDetectors() {
  static const std::vector<std::string> kDetectors = {
      "pmcorr", "ewma", "zscore", "gmm", "subspace", "linear_invariant"};
  return kDetectors;
}

ScenarioResult RunScenarioScorecard(const QualityScenario& scenario,
                                    const ScorecardConfig& config) {
  const ScenarioData d = PrepareScenario(scenario);
  const MeasurementGraph graph = MeasurementGraph::Neighborhood(
      d.train, config.remote_partners, config.graph_seed);

  ScenarioResult result;
  result.name = scenario.name;
  result.detectors.push_back(RunPmcorr(scenario, d, graph, config));
  result.detectors.push_back(RunEwma(scenario, d, config));
  result.detectors.push_back(RunZScore(scenario, d, config));
  result.detectors.push_back(RunGmm(scenario, d, graph, config));
  result.detectors.push_back(RunSubspace(scenario, d, config));
  result.detectors.push_back(RunLinearInvariant(scenario, d, graph, config));
  return result;
}

std::vector<ScenarioResult> RunScorecard(const ScorecardConfig& config) {
  const ScenarioSuite suite = MakeScenarioSuite(config.suite);
  std::vector<ScenarioResult> results;
  results.reserve(suite.scenarios.size());
  for (const QualityScenario& scenario : suite.scenarios) {
    results.push_back(RunScenarioScorecard(scenario, config));
  }
  return results;
}

void WriteScorecardJson(const std::string& path,
                        const ScorecardConfig& config,
                        const std::vector<ScenarioResult>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"quality\"";
  out << ",\n  \"mode\": \"" << config.mode << "\"";
  AppendInteger(out, "seed", static_cast<long long>(config.suite.seed));
  AppendInteger(out, "machines",
                static_cast<long long>(config.suite.machine_count));
  AppendInteger(out, "trace_days", config.suite.trace_days);
  AppendInteger(out, "scenarios", static_cast<long long>(results.size()));

  std::vector<double> f1_sum(ScorecardDetectors().size(), 0.0);
  for (const ScenarioResult& r : results) {
    for (std::size_t k = 0; k < r.detectors.size(); ++k) {
      const DetectorScore& ds = r.detectors[k];
      const std::string prefix = r.name + "." + ds.detector + ".";
      AppendNumber(out, prefix + "precision", ds.outcome.Precision());
      AppendNumber(out, prefix + "recall", ds.outcome.Recall());
      AppendNumber(out, prefix + "f1", ds.outcome.F1());
      AppendNumber(out, prefix + "latency_s",
                   ds.outcome.MeanLatencyOr(kLatencyUnavailableSeconds));
      AppendNumber(out, prefix + "loc_rank", ds.localization_rank);
      AppendInteger(out, prefix + "truth_windows",
                    static_cast<long long>(ds.outcome.truth_windows));
      AppendInteger(out, prefix + "alarm_windows",
                    static_cast<long long>(ds.outcome.alarm_windows));
      AppendInteger(out, prefix + "detected",
                    static_cast<long long>(ds.outcome.detected));
      AppendInteger(out, prefix + "false_alarms",
                    static_cast<long long>(ds.outcome.false_alarms));
      if (k < f1_sum.size()) f1_sum[k] += ds.outcome.F1();
    }
  }
  if (!results.empty()) {
    for (std::size_t k = 0; k < ScorecardDetectors().size(); ++k) {
      AppendNumber(out, ScorecardDetectors()[k] + ".mean_f1",
                   f1_sum[k] / static_cast<double>(results.size()));
    }
  }
  out << "\n}\n";

  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    throw std::runtime_error("scorecard: cannot open " + path);
  }
  file << out.str();
  if (!file.good()) {
    throw std::runtime_error("scorecard: failed writing " + path);
  }
}

}  // namespace pmcorr
