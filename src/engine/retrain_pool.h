// Shared bounded rolling-retrain pool.
//
// RollingPairRetrainer (engine/retrainer.h) gives one pair a
// double-buffered background rebuild — at the cost of one dedicated
// thread per pair. At 100k+ pairs that is 100k threads; the pool lifts
// the same machinery (window snapshots, adopt-at-a-Step-boundary,
// keep-the-old-model-on-failure, the rebuild watchdog) to a single FIFO
// work queue drained by a fixed number of workers, so the thread count
// is a deployment constant, independent of pair count.
//
// Fairness: the queue is strictly FIFO and a pair occupies at most one
// slot (queued, running, or awaiting adoption) at a time, so every pair
// whose cadence fires gets its rebuild before any pair goes twice.
// A wedged rebuild cannot starve the queue either: the watchdog writes
// the attempt off and spawns a replacement worker; the doomed worker
// discards its result and exits when the wedged build finally returns,
// restoring the bounded count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/mutex.h"
#include "common/time.h"
#include "core/model.h"

namespace pmcorr {

/// Builds a replacement model from a window snapshot — the rebuild seam
/// rebuild_override plugs into.
using RebuildFn = std::function<PairModel(
    std::span<const double> x, std::span<const double> y,
    const ModelConfig& config)>;

/// Pool-wide rebuild policy (the per-pair knobs of RetrainerConfig plus
/// the worker count and a failure backoff).
struct RetrainPoolConfig {
  /// Worker threads draining the rebuild queue. The deployment knob:
  /// fixed, independent of how many pairs the pool serves.
  std::size_t threads = 1;
  /// Sliding-window length each rebuild learns from.
  std::size_t window_samples = 15 * static_cast<std::size_t>(kSamplesPerDay);
  /// Rebuild a pair every this many of its processed samples.
  std::size_t interval_samples = static_cast<std::size_t>(kSamplesPerDay);
  /// Never rebuild from fewer buffered samples than this.
  std::size_t min_samples = static_cast<std::size_t>(kSamplesPerDay) / 2;
  /// Watchdog: a rebuild still running after this many milliseconds is
  /// abandoned — its result is discarded, the pair's slot reopens, and a
  /// replacement worker keeps the queue draining. 0 disables it.
  std::int64_t watchdog_ms = 0;
  /// Retry schedule after failed rebuilds, counted in the failing pair's
  /// own samples on top of the normal cadence; once the budget is spent
  /// the pair gives up for good (it keeps serving its last good model).
  /// The default — no delay, unlimited budget — is the
  /// RollingPairRetrainer contract: retry at every cadence, forever.
  BackoffPolicy failure_backoff{
      .base = 0,
      .multiplier = 1.0,
      .cap = 0,
      .budget = std::numeric_limits<std::size_t>::max()};
  /// Clock the watchdog measures with; tests install a fake. Empty =
  /// steady_clock.
  MonotonicClockFn clock;
  /// Fault/test seam: replaces PairModel::Learn for rebuilds (never for
  /// AddPair's initial learn).
  RebuildFn rebuild_override;
};

/// The pool. Thread contract: AddPair and WaitFor* are serial-section
/// calls; Step(i, ...) calls for the *same* pair must be serial, but
/// different pairs may step from different threads concurrently (all
/// shared state is behind one mutex; per-pair serving state — model,
/// window, cadence — is only touched by that pair's Step caller).
class RetrainPool {
 public:
  RetrainPool(ModelConfig model_config, RetrainPoolConfig config);

  /// Joins every worker. Queued rebuilds are dropped; a rebuild in
  /// flight is waited for (its result is discarded).
  ~RetrainPool();

  RetrainPool(const RetrainPool&) = delete;
  RetrainPool& operator=(const RetrainPool&) = delete;

  /// Registers a pair: learns its initial model from (x, y) with
  /// PairModel::Learn (the rebuild_override seam does not apply here)
  /// and seeds its window with the tail of (x, y). Returns the pair's
  /// pool index.
  std::size_t AddPair(std::span<const double> x, std::span<const double> y);

  /// Registers a pair with a pre-built model (e.g. restored from a
  /// checkpoint), seeding its window with the tail of (x, y).
  std::size_t AddPair(PairModel model, std::span<const double> x,
                      std::span<const double> y);

  /// Detached mode: registers a window-only slot for a pair whose
  /// serving model lives elsewhere (SystemMonitor's models_ array, via
  /// MonitorConfig::retrain). The slot's own `model` member stays
  /// default-constructed and unused — feed the slot with Observe, pull
  /// finished rebuilds with TakeAdoptable. Pass empty spans to start
  /// with an empty window (e.g. after a checkpoint restore; min_samples
  /// keeps the pool from rebuilding until the window refills live).
  std::size_t RegisterWindow(std::span<const double> x,
                             std::span<const double> y);

  /// Steps pair i: adopts a finished rebuild first (so the sample is
  /// judged by exactly one model and swaps land on sample boundaries),
  /// scores, buffers the sample, and enqueues a rebuild when the pair's
  /// cadence fires and its slot is free. Also runs the watchdog over
  /// every in-flight rebuild — any pair's Step can write off any wedged
  /// build.
  StepOutcome Step(std::size_t i, double x, double y) PMCORR_EXCLUDES(mu_);

  /// Detached-mode sibling of Step's bookkeeping half: buffers one
  /// sample into pair i's window and enqueues a rebuild when the cadence
  /// fires — without touching any serving model. Feed it the same
  /// (possibly guard-filtered) values the external model scored, so a
  /// rebuild learns from exactly the stream the serving model saw. Same
  /// serial-per-pair contract as Step. One semantic difference from
  /// Step: the failure-backoff cooldown is counted down here only while
  /// the cadence is due (Step counts every sample), so a retry lands
  /// after interval + cooldown samples instead of max(interval,
  /// cooldown) — the backoff is at least as conservative.
  void Observe(std::size_t i, double x, double y) PMCORR_EXCLUDES(mu_);

  /// Detached-mode sibling of Step's adoption half: returns pair i's
  /// finished rebuild (ready to swap in at a sample boundary), or
  /// nullptr when none is pending. The no-rebuild fast path is a single
  /// atomic load — no lock — so a shard-scale caller can poll every pair
  /// every tick. Also runs the watchdog when it does take the lock.
  std::unique_ptr<PairModel> TakeAdoptable(std::size_t i)
      PMCORR_EXCLUDES(mu_);

  std::size_t PairCount() const { return pairs_.size(); }
  const PairModel& Model(std::size_t i) const { return pairs_.at(i)->model; }

  /// Adoptions for pair i: its serving model has been replaced this many
  /// times.
  std::size_t Rebuilds(std::size_t i) const { return pairs_.at(i)->rebuilds; }

  /// Samples currently in pair i's sliding window.
  std::size_t WindowSize(std::size_t i) const {
    return pairs_.at(i)->window_x.size();
  }

  std::size_t FailedRebuilds(std::size_t i) const PMCORR_EXCLUDES(mu_);
  std::size_t AbandonedRebuilds(std::size_t i) const PMCORR_EXCLUDES(mu_);
  /// Message of pair i's most recent failed rebuild ("" if none).
  std::string LastRebuildError(std::size_t i) const PMCORR_EXCLUDES(mu_);
  /// True while pair i has a rebuild queued or running (an abandoned one
  /// no longer counts, even if its doomed worker is still grinding).
  bool RebuildInFlight(std::size_t i) const PMCORR_EXCLUDES(mu_);
  /// True once pair i spent its failure budget and stopped retrying.
  bool GaveUp(std::size_t i) const PMCORR_EXCLUDES(mu_);

  /// Rebuilds currently waiting in the queue.
  std::size_t QueueDepth() const PMCORR_EXCLUDES(mu_);
  /// Live worker threads: config threads, plus replacements for wedged
  /// workers that have not finished grinding yet.
  std::size_t ThreadCount() const PMCORR_EXCLUDES(mu_);

  /// Test hook: blocks until pair i's queued or running rebuild has
  /// produced its pending model, failed, or been abandoned. The model is
  /// still only adopted by pair i's next Step.
  void WaitForPair(std::size_t i) PMCORR_EXCLUDES(mu_);

  /// Test hook: blocks until the queue is empty and no non-abandoned
  /// rebuild is running.
  void WaitForIdle() PMCORR_EXCLUDES(mu_);

 private:
  struct PairState {
    // Serving state — touched only by this pair's Step caller.
    PairModel model;
    std::deque<double> window_x;
    std::deque<double> window_y;
    std::size_t since_rebuild = 0;
    std::size_t rebuilds = 0;

    // Shared state — guarded by the pool mutex (mu_). Clang's analysis
    // cannot attach a foreign object's capability to these members
    // (GUARDED_BY must name a mutex reachable from the declaration), so
    // the contract is enforced one level up instead: every function
    // that touches them is either a *Locked helper annotated
    // PMCORR_REQUIRES(mu_) or takes a MutexLock on mu_ first.
    bool queued = false;
    bool running = false;
    /// The in-flight rebuild was abandoned by the watchdog: its result
    /// must be discarded and the slot counts as free.
    bool abandoned_current = false;
    bool given_up = false;
    std::uint64_t current_token = 0;
    std::int64_t busy_since_ns = 0;
    std::size_t failed = 0;
    std::size_t abandoned = 0;
    std::size_t failures_in_row = 0;
    /// Samples of this pair still to pass before the next retry
    /// (failure backoff).
    std::size_t cooldown_remaining = 0;
    std::string last_error;
    std::vector<double> job_x;
    std::vector<double> job_y;
    std::unique_ptr<PairModel> pending;  // finished rebuild awaiting adoption
    /// Mirror of `pending != nullptr`, maintained under mu_ but readable
    /// without it: TakeAdoptable's no-rebuild fast path is one acquire
    /// load, so detached-mode callers poll lock-free on quiet ticks.
    std::atomic<bool> has_pending{false};
  };

  void WorkerLoop();
  void MaybeEnqueue(PairState& s, std::size_t i) PMCORR_EXCLUDES(mu_);
  /// Abandons every in-flight rebuild past the watchdog deadline and
  /// spawns replacement workers.
  void CheckWatchdogsLocked() PMCORR_REQUIRES(mu_);
  PairModel Rebuild(std::span<const double> x, std::span<const double> y);
  std::int64_t NowNs() const;
  static void SeedWindow(PairState& s, std::span<const double> x,
                         std::span<const double> y,
                         std::size_t window_samples);

  ModelConfig model_config_;
  RetrainPoolConfig config_;
  /// unique_ptr slots so PairState addresses stay stable across AddPair
  /// while workers hold references. The vector itself is governed by the
  /// serial-section contract (AddPair never races Step or the workers),
  /// not by mu_; each slot's shared block is guarded by mu_ as above.
  std::vector<std::unique_ptr<PairState>> pairs_;

  mutable Mutex mu_;
  CondVar work_cv_;  // wakes workers
  CondVar idle_cv_;  // wakes WaitForPair/WaitForIdle
  /// FIFO of pair indices.
  std::deque<std::size_t> queue_ PMCORR_GUARDED_BY(mu_);
  /// Pairs with a (running && !abandoned) build — the watchdog's scan
  /// set, bounded by the live worker count.
  std::vector<std::size_t> running_pairs_ PMCORR_GUARDED_BY(mu_);
  /// Appended under mu_ by the watchdog (replacement workers); only the
  /// destructor iterates, after every worker has been told to stop.
  std::vector<std::thread> workers_ PMCORR_GUARDED_BY(mu_);
  std::uint64_t token_counter_ PMCORR_GUARDED_BY(mu_) = 0;
  /// Running and not abandoned.
  std::size_t active_builds_ PMCORR_GUARDED_BY(mu_) = 0;
  std::size_t live_workers_ PMCORR_GUARDED_BY(mu_) = 0;
  bool stop_ PMCORR_GUARDED_BY(mu_) = false;
};

}  // namespace pmcorr
