// Streaming incident tracking: turning raw per-sample alarms into
// operator-facing incidents.
//
// A single fault typically fires many consecutive (or near-consecutive)
// pair alarms; paging once per sample is noise. IncidentTracker groups
// alarms separated by at most `merge_gap` into one incident, closes the
// incident after a quiet period, and enforces a per-incident cooldown so
// flapping faults do not re-page immediately.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/time.h"

namespace pmcorr {

/// One grouped anomaly episode.
struct Incident {
  TimePoint start = 0;
  TimePoint last_alarm = 0;
  /// Half-open end: set when the incident closes (quiet for merge_gap).
  TimePoint end = 0;
  std::size_t alarm_count = 0;
  double min_score = 1.0;
  bool open = true;
};

/// Tracker configuration.
struct IncidentConfig {
  /// Alarms at most this far apart belong to the same incident; the
  /// incident closes after this much quiet time.
  Duration merge_gap = 30 * kMinute;
  /// After an incident closes, new alarms within the cooldown re-open it
  /// instead of starting (and paging for) a fresh incident.
  Duration cooldown = 15 * kMinute;
};

/// Feed Observe() once per processed sample, in time order.
class IncidentTracker {
 public:
  explicit IncidentTracker(IncidentConfig config = {});

  /// Records one sample. `alarming` marks the sample as anomalous;
  /// `score` is its fitness (used for min_score bookkeeping). Returns a
  /// pointer to a newly *opened* incident when this alarm started one
  /// (the "page the operator" moment), nullptr otherwise.
  const Incident* Observe(TimePoint time, bool alarming, double score);

  /// Closes any open incident (end of stream).
  void Flush(TimePoint now);

  /// All incidents, oldest first (the last may still be open).
  const std::vector<Incident>& Incidents() const { return incidents_; }

  /// The currently open incident, if any.
  std::optional<Incident> Open() const;

 private:
  IncidentConfig config_;
  std::vector<Incident> incidents_;
  bool has_open_ = false;
  TimePoint last_close_ = 0;
  bool has_closed_any_ = false;
};

}  // namespace pmcorr
