#include "engine/alarm.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace pmcorr {
namespace {

template <typename GetScore>
std::vector<ScoreWindow> ExtractImpl(std::size_t count, GetScore get,
                                     TimePoint start, Duration period,
                                     double threshold,
                                     std::size_t min_length) {
  std::vector<ScoreWindow> windows;
  std::optional<ScoreWindow> open;
  auto close = [&] {
    if (open && open->Length() >= min_length) windows.push_back(*open);
    open.reset();
  };
  for (std::size_t i = 0; i < count; ++i) {
    const std::optional<double> score = get(i);
    const bool low = score && *score < threshold;
    if (low) {
      if (!open) {
        open = ScoreWindow{};
        open->first_sample = i;
        open->min_score = *score;
      }
      open->last_sample = i;
      open->min_score = std::min(open->min_score, *score);
      open->start = start + static_cast<Duration>(open->first_sample) * period;
      open->end = start + static_cast<Duration>(i + 1) * period;
    } else {
      close();
    }
  }
  close();
  return windows;
}

}  // namespace

std::vector<ScoreWindow> ExtractLowScoreWindows(
    std::span<const std::optional<double>> scores, TimePoint start,
    Duration period, double threshold, std::size_t min_length) {
  return ExtractImpl(
      scores.size(), [&](std::size_t i) { return scores[i]; }, start, period,
      threshold, min_length);
}

std::vector<ScoreWindow> ExtractLowScoreWindows(std::span<const double> scores,
                                                TimePoint start,
                                                Duration period,
                                                double threshold,
                                                std::size_t min_length) {
  return ExtractImpl(
      scores.size(),
      [&](std::size_t i) { return std::optional<double>(scores[i]); }, start,
      period, threshold, min_length);
}

bool AnyWindowOverlaps(const std::vector<ScoreWindow>& windows,
                       TimePoint from, TimePoint to) {
  return std::any_of(windows.begin(), windows.end(),
                     [&](const ScoreWindow& w) {
                       return w.start < to && from < w.end;
                     });
}

void AlarmLog::Record(AlarmRecord record) {
  records_.push_back(record);
}

namespace {

// (time, pair index) — the sample-major recording order.
bool RecordBefore(const AlarmRecord& a, const AlarmRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.pair_index < b.pair_index;
}

}  // namespace

void AlarmLog::SortForMerge() {
  std::sort(records_.begin(), records_.end(), RecordBefore);
}

void AlarmLog::AppendMerged(std::span<AlarmLog> shards,
                            std::vector<std::size_t>& cursors) {
  std::size_t total = 0;
  for (const AlarmLog& shard : shards) {
    total += shard.Count();
    PMCORR_DASSERT(std::is_sorted(shard.records_.begin(),
                                  shard.records_.end(), RecordBefore),
                   "AppendMerged shard log is not (time, pair)-sorted");
  }
  records_.reserve(records_.size() + total);
  cursors.assign(shards.size(), 0);
  // K-way merge with a linear min scan: k is the sweep's shard count
  // (bounded by the pool's thread count), so a heap would cost more in
  // bookkeeping than it saves in comparisons.
  for (std::size_t done = 0; done < total; ++done) {
    std::size_t best = shards.size();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (cursors[s] >= shards[s].records_.size()) continue;
      if (best == shards.size() ||
          RecordBefore(shards[s].records_[cursors[s]],
                       shards[best].records_[cursors[best]])) {
        best = s;
      }
    }
    records_.push_back(shards[best].records_[cursors[best]]);
    ++cursors[best];
  }
  for (AlarmLog& shard : shards) shard.records_.clear();
}

void AlarmLog::AppendMerged(std::vector<AlarmLog> shards) {
  for (AlarmLog& shard : shards) shard.SortForMerge();
  std::vector<std::size_t> cursors;
  AppendMerged(std::span<AlarmLog>(shards), cursors);
}

std::size_t AlarmLog::CountForPair(std::size_t pair_index) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const AlarmRecord& r) {
                      return r.pair_index == pair_index;
                    }));
}

std::vector<std::size_t> AlarmLog::NoisiestPairs(std::size_t limit) const {
  std::map<std::size_t, std::size_t> counts;
  for (const AlarmRecord& r : records_) ++counts[r.pair_index];
  std::vector<std::pair<std::size_t, std::size_t>> sorted(counts.begin(),
                                                          counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::size_t> out;
  for (const auto& [pair, n] : sorted) {
    if (out.size() >= limit) break;
    out.push_back(pair);
  }
  return out;
}

}  // namespace pmcorr
