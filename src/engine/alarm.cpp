#include "engine/alarm.h"

#include <algorithm>
#include <map>

namespace pmcorr {
namespace {

template <typename GetScore>
std::vector<ScoreWindow> ExtractImpl(std::size_t count, GetScore get,
                                     TimePoint start, Duration period,
                                     double threshold,
                                     std::size_t min_length) {
  std::vector<ScoreWindow> windows;
  std::optional<ScoreWindow> open;
  auto close = [&] {
    if (open && open->Length() >= min_length) windows.push_back(*open);
    open.reset();
  };
  for (std::size_t i = 0; i < count; ++i) {
    const std::optional<double> score = get(i);
    const bool low = score && *score < threshold;
    if (low) {
      if (!open) {
        open = ScoreWindow{};
        open->first_sample = i;
        open->min_score = *score;
      }
      open->last_sample = i;
      open->min_score = std::min(open->min_score, *score);
      open->start = start + static_cast<Duration>(open->first_sample) * period;
      open->end = start + static_cast<Duration>(i + 1) * period;
    } else {
      close();
    }
  }
  close();
  return windows;
}

}  // namespace

std::vector<ScoreWindow> ExtractLowScoreWindows(
    std::span<const std::optional<double>> scores, TimePoint start,
    Duration period, double threshold, std::size_t min_length) {
  return ExtractImpl(
      scores.size(), [&](std::size_t i) { return scores[i]; }, start, period,
      threshold, min_length);
}

std::vector<ScoreWindow> ExtractLowScoreWindows(std::span<const double> scores,
                                                TimePoint start,
                                                Duration period,
                                                double threshold,
                                                std::size_t min_length) {
  return ExtractImpl(
      scores.size(),
      [&](std::size_t i) { return std::optional<double>(scores[i]); }, start,
      period, threshold, min_length);
}

bool AnyWindowOverlaps(const std::vector<ScoreWindow>& windows,
                       TimePoint from, TimePoint to) {
  return std::any_of(windows.begin(), windows.end(),
                     [&](const ScoreWindow& w) {
                       return w.start < to && from < w.end;
                     });
}

void AlarmLog::Record(AlarmRecord record) {
  records_.push_back(record);
}

void AlarmLog::AppendMerged(std::vector<AlarmLog> shards) {
  const std::size_t first = records_.size();
  std::size_t total = 0;
  for (const AlarmLog& shard : shards) total += shard.Count();
  records_.reserve(first + total);
  for (AlarmLog& shard : shards) {
    records_.insert(records_.end(), shard.records_.begin(),
                    shard.records_.end());
    shard.records_.clear();
  }
  std::sort(records_.begin() + static_cast<std::ptrdiff_t>(first),
            records_.end(), [](const AlarmRecord& a, const AlarmRecord& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.pair_index < b.pair_index;
            });
}

std::size_t AlarmLog::CountForPair(std::size_t pair_index) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const AlarmRecord& r) {
                      return r.pair_index == pair_index;
                    }));
}

std::vector<std::size_t> AlarmLog::NoisiestPairs(std::size_t limit) const {
  std::map<std::size_t, std::size_t> counts;
  for (const AlarmRecord& r : records_) ++counts[r.pair_index];
  std::vector<std::pair<std::size_t, std::size_t>> sorted(counts.begin(),
                                                          counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::size_t> out;
  for (const auto& [pair, n] : sorted) {
    if (out.size() >= limit) break;
    out.push_back(pair);
  }
  return out;
}

}  // namespace pmcorr
