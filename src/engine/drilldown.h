// Incident drill-down reports: the operator-facing artifact of the
// paper's three-level hierarchy (Section 5's "the administrators can
// drill down to Q^a or even Q^{a,b} to locate the specific components").
//
// Given the engine's snapshots for an incident window, the report names
// the worst machines, the worst measurements on them, and the broken
// pair links with the value ranges involved — everything a ticket needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/monitor.h"

namespace pmcorr {

/// One suspicious pair link inside the incident.
struct DrilldownLink {
  std::size_t pair_index = 0;
  std::string description;  // "name_a x name_b"
  double mean_fitness = 0.0;
  /// Cell ranges of the pair's worst observation, rendered as
  /// "[lo,hi) x [lo,hi)" — the "problematic measurement ranges" the
  /// paper highlights for human debugging. Empty if never scorable.
  std::string worst_ranges;
};

/// One suspicious measurement.
struct DrilldownMeasurement {
  MeasurementId id;
  std::string name;
  MachineId machine;
  double mean_score = 0.0;
  std::vector<DrilldownLink> links;  // worst links first
};

/// The report: worst measurements first.
struct DrilldownReport {
  std::size_t first_sample = 0;
  std::size_t last_sample = 0;
  double mean_system_score = 0.0;
  std::vector<DrilldownMeasurement> measurements;

  /// Plain-text rendering for logs/tickets.
  std::string ToString() const;
};

/// Options.
struct DrilldownConfig {
  /// Measurements to include (worst first).
  std::size_t max_measurements = 3;
  /// Links per measurement (worst first).
  std::size_t max_links = 3;
};

/// Builds the report from the monitor (for its graph/infos/models), the
/// snapshots of one Run(), and the frame that produced them (sample t of
/// `frame` must correspond to snapshots[t]). The incident window is
/// [first_sample, last_sample], indices into `snapshots`.
DrilldownReport BuildDrilldown(const SystemMonitor& monitor,
                               const std::vector<SystemSnapshot>& snapshots,
                               const MeasurementFrame& frame,
                               std::size_t first_sample,
                               std::size_t last_sample,
                               const DrilldownConfig& config = {});

}  // namespace pmcorr
