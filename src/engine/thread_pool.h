// A small fixed-size worker pool with a ParallelFor primitive.
//
// The monitoring engine runs hundreds of independent pair models; both
// model initialization and each online step parallelize trivially across
// pairs (each model owns disjoint state). Work is handed out in
// contiguous index chunks; results are deterministic because tasks never
// share mutable state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pmcorr {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), distributing contiguous chunks
  /// across the pool, and returns when all calls completed. fn must not
  /// throw. Falls back to inline execution for tiny counts.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace pmcorr
