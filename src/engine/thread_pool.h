// A small fixed-size worker pool with ParallelFor / ParallelShards
// primitives.
//
// The monitoring engine runs hundreds of independent pair models; both
// model initialization and online scoring parallelize trivially across
// pairs (each model owns disjoint state). Work is handed out in
// contiguous index chunks; results are deterministic because tasks never
// share mutable state and the shard decomposition depends only on
// (count, max_shards, thread count).
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace pmcorr {

/// One contiguous shard of an index range, as handed to a ParallelShards
/// callback: indices [begin, end) of shard `index` out of `count` shards.
struct ShardRange {
  std::size_t index = 0;
  std::size_t count = 1;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t Size() const { return end - begin; }
};

/// Type-erased shard callback for the allocation-free dispatch path:
/// fn(ctx, range) runs one shard. Plain function pointer + context so a
/// dispatch never heap-allocates a closure.
using ShardTaskFn = void (*)(void* ctx, const ShardRange& range);

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains any queued Post() work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, count), distributing contiguous chunks
  /// across the pool, and returns when all calls completed. Falls back to
  /// inline execution for tiny counts. If any call throws, every index is
  /// still visited (or its chunk abandoned at the throwing index), the
  /// pool stays usable, and the exception of the lowest-indexed failing
  /// chunk is rethrown on the caller.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn)
      PMCORR_EXCLUDES(mutex_);

  /// Shard-major decomposition: splits [0, count) into
  /// ShardCountFor(count, max_shards) contiguous shards covering every
  /// index exactly once, and runs fn once per shard. Unlike ParallelFor,
  /// the callback owns a whole range — it can keep shard-private
  /// accumulators (per-shard logs, scratch buffers) and sweep long inner
  /// loops without per-index dispatch. Exceptions propagate as in
  /// ParallelFor (lowest shard index wins). The decomposition is a pure
  /// function of (count, max_shards, ThreadCount()), so callers may
  /// pre-size per-shard state via ShardCountFor.
  void ParallelShards(std::size_t count,
                      const std::function<void(const ShardRange&)>& fn,
                      std::size_t max_shards = 0) PMCORR_EXCLUDES(mutex_);

  /// Number of shards ParallelShards(count, fn, max_shards) will use:
  /// min(count, max_shards == 0 ? ThreadCount() : max_shards), and 0 for
  /// an empty range.
  std::size_t ShardCountFor(std::size_t count,
                            std::size_t max_shards = 0) const;

  /// Allocation-free ParallelShards: identical decomposition and
  /// exception semantics, but the region is dispatched through a
  /// preallocated control block instead of per-task queue nodes, so a
  /// steady-state caller (the monitor's per-tick path) never touches the
  /// heap to fork/join. Shards are claimed dynamically (a shared cursor,
  /// not a fixed assignment), so passing max_shards > ThreadCount() also
  /// yields load balancing. ParallelFor and ParallelShards are thin
  /// wrappers over this. One region runs at a time; concurrent external
  /// callers serialize on the control block.
  void ParallelShardsStatic(std::size_t count, ShardTaskFn fn, void* ctx,
                            std::size_t max_shards = 0)
      PMCORR_EXCLUDES(mutex_);

  /// Fire-and-forget: queues `task` for some worker and returns
  /// immediately. Queued tasks are drained (run, not dropped) by the
  /// destructor. Exceptions escaping `task` are logged and swallowed —
  /// there is no caller left to rethrow to.
  void Post(std::function<void()> task) PMCORR_EXCLUDES(mutex_);

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task) PMCORR_EXCLUDES(mutex_);
  /// Claims and runs region shards until the region drains. Entered and
  /// exited with mutex_ held; unlocked only around the user callback.
  void RunRegionShards() PMCORR_REQUIRES(mutex_);
  ShardRange RegionRange(std::size_t shard) const PMCORR_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ PMCORR_GUARDED_BY(mutex_);
  bool stop_ PMCORR_GUARDED_BY(mutex_) = false;

  /// Fork/join region control block (all fields guarded by mutex_; the
  /// claim counter hands out shards under the lock too — shard counts
  /// are small, so contention is negligible). `participants` keeps the
  /// block's fields stable: the owner only releases the region once
  /// every thread has left RunRegionShards.
  struct Region {
    ShardTaskFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t shards = 0;
    std::size_t base = 0;   // count / shards
    std::size_t extra = 0;  // count % shards
    std::size_t next = 0;
    std::size_t remaining = 0;
    std::size_t participants = 0;
    bool active = false;
    std::exception_ptr error;
    std::size_t error_begin = 0;
  };
  Region region_ PMCORR_GUARDED_BY(mutex_);
  CondVar region_cv_;  // owner join + slot release
};

}  // namespace pmcorr
