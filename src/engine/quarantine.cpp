#include "engine/quarantine.h"

namespace pmcorr {

PairQuarantine::PairQuarantine(std::size_t pair_count, QuarantineConfig config)
    : config_(config), pairs_(pair_count) {}

PairQuarantine::Decision PairQuarantine::BeginStep(std::size_t i,
                                                   std::size_t sample) {
  if (!Enabled()) return Decision::kRun;
  PairState& pair = pairs_[i];
  switch (pair.state) {
    case State::kActive:
      return Decision::kRun;
    case State::kRetired:
      return Decision::kSkip;
    case State::kQuarantined:
      if (sample < pair.retry_at) return Decision::kSkip;
      // Probation: one attempt. The pair missed samples while
      // quarantined, so its previous cell is meaningless — the caller
      // must reset the pair's sequence before stepping.
      pair.probation = true;
      return Decision::kRunAfterReset;
  }
  return Decision::kRun;
}

void PairQuarantine::RecordSuccess(std::size_t i, std::size_t sample,
                                   bool outlier) {
  if (!Enabled()) return;
  PairState& pair = pairs_[i];
  if (pair.probation) {
    // Probation survived: re-admit. The retry counter is deliberately
    // not reset — a pair that keeps tripping walks through the whole
    // budget and retires, rather than oscillating forever.
    pair.probation = false;
    pair.state = State::kActive;
  }
  if (config_.outlier_burst > 0) {
    if (outlier) {
      if (++pair.outlier_run >= config_.outlier_burst) {
        Trip(pair, sample,
             "outlier burst of " + std::to_string(pair.outlier_run));
        return;
      }
    } else {
      pair.outlier_run = 0;
    }
  }
}

void PairQuarantine::RecordFailure(std::size_t i, std::size_t sample,
                                   const std::string& what) {
  if (!Enabled()) return;
  PairState& pair = pairs_[i];
  pair.probation = false;
  Trip(pair, sample, what);
}

void PairQuarantine::AddPair() { pairs_.emplace_back(); }

void PairQuarantine::Retire(std::size_t i, const std::string& why) {
  PairState& pair = pairs_.at(i);
  pair.state = State::kRetired;
  pair.last_error = why;
  pair.probation = false;
  pair.outlier_run = 0;
}

void PairQuarantine::Trip(PairState& pair, std::size_t sample,
                          const std::string& why) {
  ++pair.trips;
  pair.last_error = why;
  pair.outlier_run = 0;
  pair.probation = false;
  if (config_.backoff.Exhausted(pair.retries)) {
    pair.state = State::kRetired;
    return;
  }
  pair.state = State::kQuarantined;
  pair.retry_at = sample + 1 + config_.backoff.DelayFor(pair.retries);
  ++pair.retries;
}

std::size_t PairQuarantine::QuarantinedCount() const {
  std::size_t n = 0;
  for (const PairState& pair : pairs_) {
    if (pair.state == State::kQuarantined) ++n;
  }
  return n;
}

std::size_t PairQuarantine::RetiredCount() const {
  std::size_t n = 0;
  for (const PairState& pair : pairs_) {
    if (pair.state == State::kRetired) ++n;
  }
  return n;
}

std::size_t PairQuarantine::TripCount() const {
  std::size_t n = 0;
  for (const PairState& pair : pairs_) n += pair.trips;
  return n;
}

bool PairQuarantine::AnyTripped() const {
  for (const PairState& pair : pairs_) {
    if (pair.trips > 0) return true;
  }
  return false;
}

bool PairQuarantine::AnyDisengaged() const {
  for (const PairState& pair : pairs_) {
    if (pair.trips > 0 || pair.state != State::kActive) return true;
  }
  return false;
}

}  // namespace pmcorr
