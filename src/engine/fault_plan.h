// Deterministic engine-level fault injection for the robustness suite.
//
// Distinct from telemetry/faults.h: FaultInjector perturbs the *data* a
// collector would produce (spikes, dropouts) to create realistic
// anomalies for the models to detect. EngineFaultPlan instead attacks
// the *engine itself* — a pair model that throws mid-step, a poisoned
// value slipped into a sample — so the quarantine and containment logic
// can be proven against failures that are exactly reproducible: same
// plan, same pair, same sample, every run.
//
// Production monitors carry no plan (a null pointer); the check sites
// compile to a single branch.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pmcorr {

/// Thrown by EngineFaultPlan::CheckPairStep at a planned fault site.
/// Derives from runtime_error so the quarantine's generic exception
/// handling covers it like any real fault.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A scripted set of engine faults, keyed by (pair or measurement,
/// 0-based engine sample index). Half-open ranges [from, to).
struct EngineFaultPlan {
  /// Pair `pair` throws InjectedFault on every step in [from, to).
  struct PairFault {
    std::size_t pair = 0;
    std::size_t from = 0;
    std::size_t to = 0;
  };
  std::vector<PairFault> pair_faults;

  /// Measurement `measurement` reads `value` on every sample in
  /// [from, to) — e.g. a NaN, an extreme outlier, or a frozen constant.
  struct PoisonFault {
    std::size_t measurement = 0;
    std::size_t from = 0;
    std::size_t to = 0;
    double value = 0.0;
  };
  std::vector<PoisonFault> poison_faults;

  /// Throws InjectedFault if a PairFault covers (pair, sample).
  void CheckPairStep(std::size_t pair, std::size_t sample) const;

  /// Overwrites `values` entries covered by a PoisonFault at `sample`
  /// (applied by tests before handing the row to the monitor).
  void ApplyToRow(std::span<double> values, std::size_t sample) const;
};

}  // namespace pmcorr
