#include "engine/retrain_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pmcorr {

RetrainPool::RetrainPool(ModelConfig model_config, RetrainPoolConfig config)
    : model_config_(model_config), config_(std::move(config)) {
  if (config_.threads == 0) config_.threads = 1;
  workers_.reserve(config_.threads);
  live_workers_ = config_.threads;
  for (std::size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back(&RetrainPool::WorkerLoop, this);
  }
}

RetrainPool::~RetrainPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::int64_t RetrainPool::NowNs() const {
  return config_.clock ? config_.clock() : MonotonicNowNs();
}

PairModel RetrainPool::Rebuild(std::span<const double> x,
                               std::span<const double> y) {
  if (config_.rebuild_override) {
    return config_.rebuild_override(x, y, model_config_);
  }
  return PairModel::Learn(x, y, model_config_);
}

void RetrainPool::SeedWindow(PairState& s, std::span<const double> x,
                             std::span<const double> y,
                             std::size_t window_samples) {
  const std::size_t keep = std::min(x.size(), window_samples);
  for (std::size_t i = x.size() - keep; i < x.size(); ++i) {
    s.window_x.push_back(x[i]);
    s.window_y.push_back(y[i]);
  }
}

std::size_t RetrainPool::AddPair(std::span<const double> x,
                                 std::span<const double> y) {
  return AddPair(PairModel::Learn(x, y, model_config_), x, y);
}

std::size_t RetrainPool::AddPair(PairModel model, std::span<const double> x,
                                 std::span<const double> y) {
  auto state = std::make_unique<PairState>();
  state->model = std::move(model);
  SeedWindow(*state, x, y, config_.window_samples);
  pairs_.push_back(std::move(state));
  return pairs_.size() - 1;
}

std::size_t RetrainPool::RegisterWindow(std::span<const double> x,
                                        std::span<const double> y) {
  auto state = std::make_unique<PairState>();
  SeedWindow(*state, x, y, config_.window_samples);
  pairs_.push_back(std::move(state));
  return pairs_.size() - 1;
}

StepOutcome RetrainPool::Step(std::size_t i, double x, double y) {
  PairState& s = *pairs_.at(i);

  // Adopt a finished rebuild before scoring, so the sample is judged by
  // exactly one model and the swap lands on a sample boundary. The
  // watchdog runs first: a wedged rebuild — of any pair — is written off
  // at a sample boundary too.
  std::unique_ptr<PairModel> fresh;
  {
    const MutexLock lock(mu_);
    CheckWatchdogsLocked();
    fresh = std::move(s.pending);
    s.has_pending.store(false, std::memory_order_relaxed);
    if (s.cooldown_remaining > 0) --s.cooldown_remaining;
  }
  if (fresh) {
    s.model = std::move(*fresh);
    ++s.rebuilds;
  }

  const StepOutcome out = s.model.Step(x, y);
  s.window_x.push_back(x);
  s.window_y.push_back(y);
  while (s.window_x.size() > config_.window_samples) {
    s.window_x.pop_front();
    s.window_y.pop_front();
  }
  ++s.since_rebuild;
  MaybeEnqueue(s, i);
  return out;
}

void RetrainPool::MaybeEnqueue(PairState& s, std::size_t i) {
  if (s.since_rebuild < config_.interval_samples) return;
  if (s.window_x.size() < config_.min_samples) return;
  {
    const MutexLock lock(mu_);
    if (s.given_up) {
      // Permanent: stop re-checking every sample.
      s.since_rebuild = 0;
      return;
    }
    // Backoff after failures, and one slot per pair: a queued, running
    // (non-abandoned) or awaiting-adoption rebuild defers the cadence to
    // the next Step (since_rebuild stays past the interval, so this
    // re-checks every sample — exactly the RollingPairRetrainer rule).
    if (s.cooldown_remaining > 0) return;
    if (s.queued || (s.running && !s.abandoned_current) || s.pending) return;
    s.job_x.assign(s.window_x.begin(), s.window_x.end());
    s.job_y.assign(s.window_y.begin(), s.window_y.end());
    s.queued = true;
    queue_.push_back(i);
  }
  work_cv_.NotifyOne();
  s.since_rebuild = 0;
}

void RetrainPool::Observe(std::size_t i, double x, double y) {
  PairState& s = *pairs_.at(i);
  s.window_x.push_back(x);
  s.window_y.push_back(y);
  while (s.window_x.size() > config_.window_samples) {
    s.window_x.pop_front();
    s.window_y.pop_front();
  }
  ++s.since_rebuild;
  if (s.since_rebuild < config_.interval_samples) return;
  if (s.window_x.size() < config_.min_samples) return;
  {
    const MutexLock lock(mu_);
    // Detached callers have no Step to host the watchdog, so it piggy-
    // backs on every cadence check (and on TakeAdoptable's slow path).
    CheckWatchdogsLocked();
    if (s.given_up) {
      s.since_rebuild = 0;
      return;
    }
    if (s.cooldown_remaining > 0) {
      --s.cooldown_remaining;
      return;
    }
    if (s.queued || (s.running && !s.abandoned_current) || s.pending) return;
    s.job_x.assign(s.window_x.begin(), s.window_x.end());
    s.job_y.assign(s.window_y.begin(), s.window_y.end());
    s.queued = true;
    queue_.push_back(i);
  }
  work_cv_.NotifyOne();
  s.since_rebuild = 0;
}

std::unique_ptr<PairModel> RetrainPool::TakeAdoptable(std::size_t i) {
  PairState& s = *pairs_.at(i);
  if (!s.has_pending.load(std::memory_order_acquire)) return nullptr;
  std::unique_ptr<PairModel> fresh;
  {
    const MutexLock lock(mu_);
    CheckWatchdogsLocked();
    fresh = std::move(s.pending);
    s.has_pending.store(false, std::memory_order_relaxed);
  }
  if (fresh) ++s.rebuilds;
  return fresh;
}

void RetrainPool::CheckWatchdogsLocked() {
  if (config_.watchdog_ms <= 0 || running_pairs_.empty()) return;
  const std::int64_t limit_ns = config_.watchdog_ms * 1'000'000;
  const std::int64_t now = NowNs();
  for (std::size_t r = 0; r < running_pairs_.size();) {
    PairState& s = *pairs_[running_pairs_[r]];
    PMCORR_DASSERT(s.running && !s.abandoned_current,
                   "running_pairs_ entry is not an active build");
    if (now - s.busy_since_ns < limit_ns) {
      ++r;
      continue;
    }
    // Grinding past its deadline. The thread itself cannot be killed;
    // the watchdog writes the attempt off — the result will be
    // discarded, the pair's slot reopens — and spawns a replacement so
    // the queue keeps draining at full width. The doomed worker exits
    // when its rebuild finally returns.
    s.abandoned_current = true;
    ++s.abandoned;
    --active_builds_;
    running_pairs_.erase(running_pairs_.begin() +
                         static_cast<std::ptrdiff_t>(r));
    ++live_workers_;
    workers_.emplace_back(&RetrainPool::WorkerLoop, this);
    idle_cv_.NotifyAll();
  }
}

void RetrainPool::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    while (!(stop_ || !queue_.empty())) work_cv_.Wait(mu_);
    if (stop_) {
      mu_.Unlock();
      return;
    }
    const std::size_t index = queue_.front();
    queue_.pop_front();
    PairState& s = *pairs_[index];
    s.queued = false;
    s.running = true;
    s.abandoned_current = false;
    s.busy_since_ns = NowNs();
    const std::uint64_t token = ++token_counter_;
    s.current_token = token;
    ++active_builds_;
    running_pairs_.push_back(index);
    std::vector<double> xs = std::move(s.job_x);
    std::vector<double> ys = std::move(s.job_y);
    mu_.Unlock();

    // A throwing rebuild must not escape the worker (that would
    // std::terminate): it becomes a counted failure and the serving
    // model keeps serving.
    std::unique_ptr<PairModel> fresh;
    std::string error;
    try {
      fresh = std::make_unique<PairModel>(Rebuild(xs, ys));
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "rebuild threw a non-std::exception";
    }

    mu_.Lock();
    // The watchdog may have written this attempt off while the build
    // ran — and the pair may even be running a *fresh* build already
    // (token mismatch). Either way the result is discarded and this
    // worker is surplus: a replacement was spawned at abandon time, so
    // it exits to restore the bounded thread count.
    const bool abandoned = s.current_token != token || s.abandoned_current;
    if (abandoned) {
      if (s.current_token == token) {
        s.running = false;
        s.abandoned_current = false;
      }
      --live_workers_;
      idle_cv_.NotifyAll();
      mu_.Unlock();
      return;
    }
    if (!error.empty()) {
      ++s.failed;
      ++s.failures_in_row;
      s.last_error = std::move(error);
      if (config_.failure_backoff.Exhausted(s.failures_in_row)) {
        s.given_up = true;
      } else {
        s.cooldown_remaining =
            config_.failure_backoff.DelayFor(s.failures_in_row - 1);
      }
    } else {
      s.pending = std::move(fresh);
      s.has_pending.store(true, std::memory_order_release);
      s.failures_in_row = 0;
    }
    s.running = false;
    --active_builds_;
    running_pairs_.erase(
        std::find(running_pairs_.begin(), running_pairs_.end(), index));
    idle_cv_.NotifyAll();
  }
}

std::size_t RetrainPool::FailedRebuilds(std::size_t i) const {
  const MutexLock lock(mu_);
  return pairs_.at(i)->failed;
}

std::size_t RetrainPool::AbandonedRebuilds(std::size_t i) const {
  const MutexLock lock(mu_);
  return pairs_.at(i)->abandoned;
}

std::string RetrainPool::LastRebuildError(std::size_t i) const {
  const MutexLock lock(mu_);
  return pairs_.at(i)->last_error;
}

bool RetrainPool::RebuildInFlight(std::size_t i) const {
  const MutexLock lock(mu_);
  const PairState& s = *pairs_.at(i);
  return s.queued || (s.running && !s.abandoned_current);
}

bool RetrainPool::GaveUp(std::size_t i) const {
  const MutexLock lock(mu_);
  return pairs_.at(i)->given_up;
}

std::size_t RetrainPool::QueueDepth() const {
  const MutexLock lock(mu_);
  return queue_.size();
}

std::size_t RetrainPool::ThreadCount() const {
  const MutexLock lock(mu_);
  return live_workers_;
}

void RetrainPool::WaitForPair(std::size_t i) {
  PairState& s = *pairs_.at(i);
  const MutexLock lock(mu_);
  while (!(!s.queued && (!s.running || s.abandoned_current))) {
    idle_cv_.Wait(mu_);
  }
}

void RetrainPool::WaitForIdle() {
  const MutexLock lock(mu_);
  while (!(queue_.empty() && active_builds_ == 0)) idle_cv_.Wait(mu_);
}

}  // namespace pmcorr
