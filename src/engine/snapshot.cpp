#include "engine/snapshot.h"

#include <stdexcept>
#include <string>

namespace pmcorr {
namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("DeltaReconstructor: " + what);
}

// Ascending-index walk shared by the four sparse lists.
template <typename T, typename Index>
void CheckAscending(const std::vector<T>& entries, Index index_of,
                    std::size_t limit, const char* what) {
  std::size_t prev = 0;
  bool first = true;
  for (const T& entry : entries) {
    const std::size_t index = index_of(entry);
    if (index >= limit) Fail(std::string(what) + " index out of range");
    if (!first && index <= prev) Fail(std::string(what) + " not ascending");
    prev = index;
    first = false;
  }
}

}  // namespace

const SystemSnapshot& DeltaReconstructor::Apply(const SystemDelta& delta) {
  if (!has_state_ && !delta.baseline) {
    Fail("stream does not start with a baseline delta");
  }
  const std::size_t pairs = delta.pair_count;
  const std::size_t m = delta.measurement_count;
  if (delta.baseline) {
    if (!delta.pair_disengaged.empty() ||
        !delta.measurement_disengaged.empty()) {
      Fail("baseline delta carries disengage lists");
    }
    state_.pair_scores.assign(pairs, std::nullopt);
    state_.measurement_scores.assign(m, std::nullopt);
    state_.measurement_health.clear();
    if (delta.has_health) {
      state_.measurement_health.assign(m, MeasurementHealth::kHealthy);
    }
  } else {
    if (state_.pair_scores.size() != pairs ||
        state_.measurement_scores.size() != m) {
      Fail("delta width disagrees with reconstructed state");
    }
    if (delta.has_health != !state_.measurement_health.empty()) {
      Fail("delta health tracking flipped without a baseline");
    }
  }

  CheckAscending(
      delta.pair_changes, [](const ScoreChange& c) { return c.index; }, pairs,
      "pair change");
  CheckAscending(
      delta.pair_disengaged, [](std::uint32_t i) { return i; }, pairs,
      "pair disengage");
  CheckAscending(
      delta.measurement_changes, [](const ScoreChange& c) { return c.index; },
      m, "measurement change");
  CheckAscending(
      delta.measurement_disengaged, [](std::uint32_t i) { return i; }, m,
      "measurement disengage");
  CheckAscending(
      delta.health_changes, [](const HealthChange& c) { return c.index; }, m,
      "health change");
  if (!delta.has_health && !delta.health_changes.empty()) {
    Fail("health changes present but health tracking is off");
  }

  for (const std::uint32_t i : delta.pair_disengaged) {
    state_.pair_scores[i] = std::nullopt;
  }
  for (const ScoreChange& c : delta.pair_changes) {
    state_.pair_scores[c.index] = c.score;
  }
  for (const std::uint32_t i : delta.measurement_disengaged) {
    state_.measurement_scores[i] = std::nullopt;
  }
  for (const ScoreChange& c : delta.measurement_changes) {
    state_.measurement_scores[c.index] = c.score;
  }
  for (const HealthChange& c : delta.health_changes) {
    state_.measurement_health[c.index] = c.health;
  }

  state_.sample = delta.sample;
  state_.time = delta.time;
  state_.system_score = delta.system_score;
  state_.alarmed_pairs = delta.alarmed_pairs;
  state_.outlier_pairs = delta.outlier_pairs;
  state_.extended_pairs = delta.extended_pairs;
  state_.stream_event = delta.stream_event;
  state_.suppressed_values = delta.suppressed_values;
  state_.quarantined_pairs = delta.quarantined_pairs;
  has_state_ = true;
  return state_;
}

std::vector<SystemSnapshot> ReconstructSnapshots(
    std::span<const SystemDelta> deltas) {
  DeltaReconstructor reconstructor;
  std::vector<SystemSnapshot> snapshots;
  snapshots.reserve(deltas.size());
  for (const SystemDelta& delta : deltas) {
    snapshots.push_back(reconstructor.Apply(delta));
  }
  return snapshots;
}

}  // namespace pmcorr
