// Umbrella header: the full pmcorr public API.
//
//   #include "pmcorr.h"
//
// Pulls in the pairwise transition probability model (the ICDCS'09
// paper's contribution), the system-wide monitoring engine, the trace
// simulator, the baselines and the persistence layer. Include individual
// headers instead when compile time matters.
#pragma once

// Core model (the paper's contribution).
#include "core/calibration.h"
#include "core/config.h"
#include "core/fitness.h"
#include "core/model.h"
#include "core/time_conditioned.h"
#include "core/transition_matrix.h"

// Grid substrate.
#include "grid/grid.h"
#include "grid/interval.h"
#include "grid/kernels.h"
#include "grid/partitioner.h"

// Monitoring engine.
#include "engine/alarm.h"
#include "engine/assembler.h"
#include "engine/drilldown.h"
#include "engine/evaluation.h"
#include "engine/incident.h"
#include "engine/localizer.h"
#include "engine/measurement_graph.h"
#include "engine/monitor.h"
#include "engine/retrainer.h"
#include "engine/scorecard.h"

// Time series and traces.
#include "timeseries/frame.h"
#include "timeseries/resample.h"
#include "timeseries/series.h"
#include "timeseries/summary.h"

// Telemetry simulation.
#include "telemetry/faults.h"
#include "telemetry/generator.h"
#include "telemetry/queueing.h"
#include "telemetry/scenarios.h"
#include "telemetry/suite.h"
#include "telemetry/topology.h"
#include "telemetry/workload.h"

// Baselines.
#include "baselines/ewma.h"
#include "baselines/gmm.h"
#include "baselines/linear_invariant.h"
#include "baselines/static_density.h"
#include "baselines/subspace.h"
#include "baselines/zscore.h"

// Persistence.
#include "io/csv.h"
#include "io/jsonl.h"
#include "io/model_io.h"
#include "io/monitor_io.h"

// Utilities.
#include "common/rng.h"
#include "common/sparkline.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/time.h"
#include "common/types.h"
