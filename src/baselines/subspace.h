// PCA subspace baseline (the family of reference [7] in the paper:
// Li et al., "Detection and identification of network anomalies using
// sketch subspaces", itself building on the Lakhina-style PCA method).
//
// Fit: standardize the l measurements over the training frame, compute
// the covariance, extract the top-k principal components (the "normal
// subspace"). Detect: project a sample onto the residual subspace; a
// large squared prediction error (SPE) marks an anomaly. This is a
// *system-level* detector: one score per sample, with no pairwise
// drill-down — which is exactly the capability gap the paper's
// three-level fitness hierarchy fills.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "timeseries/frame.h"

namespace pmcorr {

/// Fit/detection configuration.
struct SubspaceConfig {
  /// Principal components forming the normal subspace (clamped to the
  /// number of measurements).
  std::size_t components = 3;
  /// SPE anomaly boundary: this quantile of training SPEs.
  double spe_quantile = 0.995;
  /// Power-iteration steps per component.
  std::size_t power_iterations = 300;
  std::uint64_t seed = 29;  // power-iteration start vectors
};

class SubspaceDetector {
 public:
  /// Fits the normal subspace on a training frame (samples >= 2).
  static SubspaceDetector Fit(const MeasurementFrame& frame,
                              const SubspaceConfig& config = {});

  std::size_t MeasurementCount() const { return means_.size(); }
  std::size_t ComponentCount() const { return components_.size(); }

  /// Squared prediction error of one aligned sample (values[i] =
  /// measurement i): the squared norm of the standardized sample's
  /// projection onto the residual subspace.
  double Spe(std::span<const double> values) const;

  /// True when the sample's SPE exceeds the training-quantile boundary.
  bool IsAnomaly(std::span<const double> values) const;

  /// The SPE boundary.
  double Threshold() const { return threshold_; }

  /// Per-measurement squared residual contributions (sums to Spe).
  /// The classic PCA-diagnosis heuristic: the largest contributor is the
  /// most suspicious measurement.
  std::vector<double> ResidualContributions(
      std::span<const double> values) const;

  /// Fraction of training variance captured by the normal subspace.
  double CapturedVariance() const { return captured_variance_; }

 private:
  std::vector<double> Standardize(std::span<const double> values) const;

  std::vector<double> means_;
  std::vector<double> scales_;  // 1 / stddev (0 for constant measurements)
  /// Row-major k x l orthonormal basis of the normal subspace.
  std::vector<std::vector<double>> components_;
  double threshold_ = 0.0;
  double captured_variance_ = 0.0;
};

}  // namespace pmcorr
