#include "baselines/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace pmcorr {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

double LogSumExp(std::span<const double> xs) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : xs) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double total = 0.0;
  for (double x : xs) total += std::exp(x - mx);
  return mx + std::log(total);
}

}  // namespace

double GaussianComponent::Mahalanobis2(double x, double y) const {
  const double det = cov_xx * cov_yy - cov_xy * cov_xy;
  if (det <= 0.0) return std::numeric_limits<double>::infinity();
  const double dx = x - mean_x;
  const double dy = y - mean_y;
  // Inverse of a symmetric 2x2 matrix.
  const double ixx = cov_yy / det;
  const double ixy = -cov_xy / det;
  const double iyy = cov_xx / det;
  return dx * dx * ixx + 2.0 * dx * dy * ixy + dy * dy * iyy;
}

double GaussianComponent::LogDensity(double x, double y) const {
  const double det = cov_xx * cov_yy - cov_xy * cov_xy;
  if (det <= 0.0) return -std::numeric_limits<double>::infinity();
  return -0.5 * (Mahalanobis2(x, y) + std::log(det)) - kLog2Pi;
}

GaussianMixtureModel GaussianMixtureModel::Fit(std::span<const double> x,
                                               std::span<const double> y,
                                               const GmmConfig& config) {
  PMCORR_DASSERT(x.size() == y.size());
  const std::size_t n = x.size();
  const std::size_t k = std::max<std::size_t>(1, config.components);
  PMCORR_DASSERT(n >= k);

  const double var_x = std::max(Variance(x), 1e-12);
  const double var_y = std::max(Variance(y), 1e-12);
  const double ridge_x = config.ridge * var_x + 1e-12;
  const double ridge_y = config.ridge * var_y + 1e-12;

  GaussianMixtureModel model;
  model.components_.resize(k);

  // k-means++-style seeding: first mean uniform, then proportional to
  // squared distance from the nearest chosen mean.
  Rng rng(config.seed);
  std::vector<std::size_t> centers;
  centers.push_back(static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(n) - 1)));
  while (centers.size() < k) {
    std::vector<double> d2(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c : centers) {
        const double dx = (x[i] - x[c]) / std::sqrt(var_x);
        const double dy = (y[i] - y[c]) / std::sqrt(var_y);
        best = std::min(best, dx * dx + dy * dy);
      }
      d2[i] = best;
    }
    double total = 0.0;
    for (double v : d2) total += v;
    if (total <= 0.0) {
      centers.push_back(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(n) - 1)));
    } else {
      centers.push_back(rng.Categorical(d2));
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    auto& comp = model.components_[c];
    comp.weight = 1.0 / static_cast<double>(k);
    comp.mean_x = x[centers[c]];
    comp.mean_y = y[centers[c]];
    comp.cov_xx = var_x;
    comp.cov_yy = var_y;
    comp.cov_xy = 0.0;
  }

  // EM iterations.
  std::vector<double> resp(n * k);
  double prev_loglik = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // E step.
    double loglik = 0.0;
    std::vector<double> logp(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) {
        logp[c] = std::log(std::max(model.components_[c].weight, 1e-300)) +
                  model.components_[c].LogDensity(x[i], y[i]);
      }
      const double lse = LogSumExp(logp);
      loglik += lse;
      for (std::size_t c = 0; c < k; ++c) {
        resp[i * k + c] = std::exp(logp[c] - lse);
      }
    }

    // M step.
    for (std::size_t c = 0; c < k; ++c) {
      double nc = 0.0, mx = 0.0, my = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = resp[i * k + c];
        nc += r;
        mx += r * x[i];
        my += r * y[i];
      }
      auto& comp = model.components_[c];
      if (nc < 1e-9) {
        // Dead component: re-seed on the point the mixture explains worst.
        std::size_t worst = 0;
        double worst_d = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
          const double d = model.LogDensity(x[i], y[i]);
          if (d < worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        comp.mean_x = x[worst];
        comp.mean_y = y[worst];
        comp.cov_xx = var_x;
        comp.cov_yy = var_y;
        comp.cov_xy = 0.0;
        comp.weight = 1.0 / static_cast<double>(n);
        continue;
      }
      comp.weight = nc / static_cast<double>(n);
      comp.mean_x = mx / nc;
      comp.mean_y = my / nc;
      double sxx = 0.0, sxy = 0.0, syy = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = resp[i * k + c];
        const double dx = x[i] - comp.mean_x;
        const double dy = y[i] - comp.mean_y;
        sxx += r * dx * dx;
        sxy += r * dx * dy;
        syy += r * dy * dy;
      }
      comp.cov_xx = sxx / nc + ridge_x;
      comp.cov_xy = sxy / nc;
      comp.cov_yy = syy / nc + ridge_y;
    }

    const double rel = std::fabs(loglik - prev_loglik) /
                       (std::fabs(prev_loglik) + 1e-12);
    model.train_loglik_ = loglik / static_cast<double>(n);
    if (iter > 0 && rel < config.tolerance) break;
    prev_loglik = loglik;
  }

  // Anomaly boundary: a low quantile of training densities.
  std::vector<double> densities(n);
  for (std::size_t i = 0; i < n; ++i) {
    densities[i] = model.LogDensity(x[i], y[i]);
  }
  model.density_threshold_ =
      Quantile(densities, config.density_quantile).value_or(-1e30);
  const double median = Quantile(densities, 0.5).value_or(0.0);
  model.density_scale_ =
      std::max(median - model.density_threshold_, 1e-6);
  return model;
}

double GaussianMixtureModel::LogDensity(double x, double y) const {
  std::vector<double> logp(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    logp[c] = std::log(std::max(components_[c].weight, 1e-300)) +
              components_[c].LogDensity(x, y);
  }
  return LogSumExp(logp);
}

bool GaussianMixtureModel::IsAnomaly(double x, double y) const {
  return LogDensity(x, y) < density_threshold_;
}

double GaussianMixtureModel::Score(double x, double y) const {
  const double d = LogDensity(x, y);
  return std::clamp((d - density_threshold_) / density_scale_, 0.0, 1.0);
}

}  // namespace pmcorr
