#include "baselines/static_density.h"

#include <stdexcept>

#include "common/check.h"

namespace pmcorr {

StaticDensityModel StaticDensityModel::Learn(std::span<const double> x,
                                             std::span<const double> y,
                                             const PartitionerConfig& config) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument(
        "StaticDensityModel::Learn: history vectors must be non-empty and"
        " equal size");
  }
  StaticDensityModel model;
  model.grid_ = Grid2D(PartitionDimension(x, config),
                       PartitionDimension(y, config));
  model.counts_.assign(model.grid_.CellCount(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (const auto cell = model.grid_.CellOf({x[i], y[i]})) {
      ++model.counts_[*cell];
    }
  }
  return model;
}

std::size_t StaticDensityModel::RankOf(std::size_t cell) const {
  PMCORR_DASSERT(cell < counts_.size());
  std::size_t rank = 1;
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    if (counts_[j] > counts_[cell] ||
        (counts_[j] == counts_[cell] && j < cell)) {
      ++rank;
    }
  }
  return rank;
}

double StaticDensityModel::Score(double x, double y) const {
  const auto cell = grid_.CellOf({x, y});
  if (!cell) return 0.0;
  const std::size_t rank = RankOf(*cell);
  return 1.0 - static_cast<double>(rank - 1) /
                   static_cast<double>(counts_.size());
}

}  // namespace pmcorr
