#include "baselines/subspace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "common/stats.h"

namespace pmcorr {
namespace {

double Dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(std::span<const double> v) { return std::sqrt(Dot(v, v)); }

}  // namespace

SubspaceDetector SubspaceDetector::Fit(const MeasurementFrame& frame,
                                       const SubspaceConfig& config) {
  const std::size_t l = frame.MeasurementCount();
  const std::size_t n = frame.SampleCount();
  if (l == 0 || n < 2) {
    throw std::invalid_argument(
        "SubspaceDetector::Fit: need measurements and >= 2 samples");
  }

  SubspaceDetector det;
  det.means_.resize(l);
  det.scales_.resize(l);
  for (std::size_t a = 0; a < l; ++a) {
    RunningStats stats;
    for (double v :
         frame.Series(MeasurementId(static_cast<std::int32_t>(a))).Values()) {
      stats.Add(v);
    }
    det.means_[a] = stats.Mean();
    const double sd = stats.StdDev();
    det.scales_[a] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }

  // Standardized data matrix (n x l) and covariance (l x l).
  std::vector<double> z(n * l);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t a = 0; a < l; ++a) {
      const double v =
          frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
      z[t * l + a] = (v - det.means_[a]) * det.scales_[a];
    }
  }
  std::vector<double> cov(l * l, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < l; ++i) {
      const double zi = z[t * l + i];
      for (std::size_t j = i; j < l; ++j) {
        cov[i * l + j] += zi * z[t * l + j];
      }
    }
  }
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = i; j < l; ++j) {
      cov[i * l + j] /= static_cast<double>(n - 1);
      cov[j * l + i] = cov[i * l + j];
    }
  }

  // Top-k eigenvectors by power iteration with deflation.
  const std::size_t k = std::min(config.components, l);
  Rng rng(config.seed);
  std::vector<double> work(cov);  // deflated in place
  double total_variance = 0.0;
  for (std::size_t i = 0; i < l; ++i) total_variance += cov[i * l + i];
  double captured = 0.0;

  for (std::size_t comp = 0; comp < k; ++comp) {
    std::vector<double> v(l);
    for (double& x : v) x = rng.Normal();
    double eigenvalue = 0.0;
    for (std::size_t iter = 0; iter < config.power_iterations; ++iter) {
      std::vector<double> next(l, 0.0);
      for (std::size_t i = 0; i < l; ++i) {
        for (std::size_t j = 0; j < l; ++j) {
          next[i] += work[i * l + j] * v[j];
        }
      }
      const double norm = Norm(next);
      if (norm < 1e-15) break;  // deflated to nothing
      for (std::size_t i = 0; i < l; ++i) next[i] /= norm;
      eigenvalue = norm;
      v = std::move(next);
    }
    captured += eigenvalue;
    // Deflate: work -= lambda * v v^T.
    for (std::size_t i = 0; i < l; ++i) {
      for (std::size_t j = 0; j < l; ++j) {
        work[i * l + j] -= eigenvalue * v[i] * v[j];
      }
    }
    det.components_.push_back(std::move(v));
  }
  det.captured_variance_ =
      total_variance > 0.0 ? captured / total_variance : 0.0;

  // SPE boundary from the training distribution.
  std::vector<double> spes(n);
  std::vector<double> sample(l);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t a = 0; a < l; ++a) {
      sample[a] =
          frame.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    spes[t] = det.Spe(sample);
  }
  det.threshold_ = Quantile(spes, config.spe_quantile).value_or(0.0);
  return det;
}

std::vector<double> SubspaceDetector::Standardize(
    std::span<const double> values) const {
  std::vector<double> z(means_.size());
  for (std::size_t a = 0; a < means_.size(); ++a) {
    z[a] = (values[a] - means_[a]) * scales_[a];
  }
  return z;
}

std::vector<double> SubspaceDetector::ResidualContributions(
    std::span<const double> values) const {
  if (values.size() != means_.size()) {
    throw std::invalid_argument(
        "SubspaceDetector::ResidualContributions: size mismatch");
  }
  const std::vector<double> z = Standardize(values);
  // Residual = z - P P^T z.
  std::vector<double> residual = z;
  for (const auto& component : components_) {
    const double coeff = Dot(z, component);
    for (std::size_t i = 0; i < residual.size(); ++i) {
      residual[i] -= coeff * component[i];
    }
  }
  for (double& r : residual) r = r * r;
  return residual;
}

double SubspaceDetector::Spe(std::span<const double> values) const {
  const std::vector<double> contributions = ResidualContributions(values);
  double total = 0.0;
  for (double c : contributions) total += c;
  return total;
}

bool SubspaceDetector::IsAnomaly(std::span<const double> values) const {
  return Spe(values) > threshold_;
}

}  // namespace pmcorr
