#include "baselines/linear_invariant.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace pmcorr {

std::optional<LinearInvariant> LinearInvariant::Learn(
    std::span<const double> x, std::span<const double> y,
    const LinearInvariantConfig& config) {
  const auto fit = FitLinear(x, y);
  if (!fit || fit->r_squared < config.min_r_squared) return std::nullopt;

  LinearInvariant inv;
  inv.config_ = config;
  inv.slope_ = fit->slope;
  inv.intercept_ = fit->intercept;
  inv.r_squared_ = fit->r_squared;

  RunningStats residuals;
  for (std::size_t i = 0; i < x.size(); ++i) {
    residuals.Add(y[i] - (fit->slope * x[i] + fit->intercept));
  }
  inv.residual_sigma_ = std::max(residuals.StdDev(), 1e-12);
  return inv;
}

LinearInvariant::Eval LinearInvariant::Evaluate(double x, double y) const {
  Eval eval;
  eval.predicted = slope_ * x + intercept_;
  eval.residual = y - eval.predicted;
  eval.sigmas = std::fabs(eval.residual) / residual_sigma_;
  eval.alarm = eval.sigmas > config_.alarm_sigmas;
  eval.score = std::clamp(1.0 - eval.sigmas / config_.alarm_sigmas, 0.0, 1.0);
  return eval;
}

}  // namespace pmcorr
