// Linear-invariant baseline (the approach of references [1]/[2] in the
// paper: Jiang et al., "Discovering likely invariants of distributed
// transaction systems", and Munawar et al.'s invariant metric
// relationships).
//
// A pairwise invariant is a least-squares line y = slope*x + intercept
// whose fit quality clears a threshold; at runtime the residual is
// monitored and an alarm flags when the extracted relationship "breaks".
// This baseline characterizes Figure 2(b)-style pairs perfectly and —
// which is the paper's motivating point — cannot model Figure 2(c)/(d).
#pragma once

#include <optional>
#include <span>

namespace pmcorr {

/// Configuration of the invariant learner/detector.
struct LinearInvariantConfig {
  /// Minimum R^2 for the pair to count as holding a linear invariant at
  /// all ([1] keeps only high-fitness invariants).
  double min_r_squared = 0.7;
  /// Alarm when |residual| exceeds this many training residual sigmas.
  double alarm_sigmas = 3.0;
};

/// One learned pairwise linear invariant.
class LinearInvariant {
 public:
  /// Fits y ~ x on the history; returns nullopt when x is degenerate or
  /// the fit's R^2 is below config.min_r_squared (no invariant exists —
  /// exactly what happens on the paper's non-linear pairs).
  static std::optional<LinearInvariant> Learn(
      std::span<const double> x, std::span<const double> y,
      const LinearInvariantConfig& config = {});

  /// Evaluation of one observation against the invariant.
  struct Eval {
    double predicted = 0.0;
    double residual = 0.0;
    /// Residual in training-sigma units (absolute).
    double sigmas = 0.0;
    bool alarm = false;
    /// Fitness-like score in [0, 1]: 1 at zero residual, linearly
    /// decaying to 0 at the alarm boundary (comparable to Q^{a,b}).
    double score = 1.0;
  };
  Eval Evaluate(double x, double y) const;

  double Slope() const { return slope_; }
  double Intercept() const { return intercept_; }
  double RSquared() const { return r_squared_; }
  double ResidualSigma() const { return residual_sigma_; }

 private:
  LinearInvariantConfig config_;
  double slope_ = 0.0;
  double intercept_ = 0.0;
  double r_squared_ = 0.0;
  double residual_sigma_ = 1.0;
};

}  // namespace pmcorr
