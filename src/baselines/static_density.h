// Order-0 ablation of the transition probability model: a *static*
// grid-density model.
//
// The paper's key claim is that modeling the data's *evolution*
// (temporal correlations, Section 3's Markov transition matrix) beats
// modeling static data points. This baseline strips the temporal part:
// it keeps the identical adaptive grid but scores each observation by
// the rank of its cell's historical visit density, ignoring where the
// previous observation was. Comparing the two isolates exactly what the
// order-1 structure buys (see bench_markov_ablation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid.h"
#include "grid/partitioner.h"

namespace pmcorr {

/// Spatial-only grid model: M = (G, cell densities).
class StaticDensityModel {
 public:
  /// Builds the same adaptive grid a PairModel would use and counts the
  /// history points per cell. Vectors must be non-empty and equal size.
  static StaticDensityModel Learn(std::span<const double> x,
                                  std::span<const double> y,
                                  const PartitionerConfig& config = {});

  const Grid2D& Grid() const { return grid_; }

  /// Visit count of a cell.
  std::uint64_t CountOf(std::size_t cell) const { return counts_.at(cell); }

  /// 1-based rank of the cell's density (1 = densest; ties break toward
  /// the lower index).
  std::size_t RankOf(std::size_t cell) const;

  /// The analogue of the paper's fitness score, but rank-by-density:
  /// 1 for the historically densest cell, 1/s for the sparsest, 0 for
  /// points outside the grid. Stateless: the previous sample is ignored.
  double Score(double x, double y) const;

 private:
  Grid2D grid_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace pmcorr
