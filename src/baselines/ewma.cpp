#include "baselines/ewma.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace pmcorr {

EwmaDetector EwmaDetector::Learn(std::span<const double> history,
                                 const EwmaConfig& config) {
  PMCORR_DASSERT(config.lambda > 0.0 && config.lambda <= 1.0);
  RunningStats stats;
  for (double v : history) stats.Add(v);
  EwmaDetector det;
  det.config_ = config;
  det.mean_ = stats.Mean();
  det.sigma_ = std::max(stats.StdDev(), 1e-12);
  det.Reset();
  return det;
}

void EwmaDetector::Reset() {
  ewma_ = mean_;
  t_ = 0;
}

EwmaDetector::Eval EwmaDetector::Observe(double value) {
  const double lambda = config_.lambda;
  ewma_ = lambda * value + (1.0 - lambda) * ewma_;
  ++t_;

  // Exact start-up variance: sigma_z^2 = sigma^2 * lambda/(2-lambda) *
  // (1 - (1-lambda)^(2t)); converges to the asymptotic limit.
  const double shrink =
      1.0 - std::pow(1.0 - lambda, 2.0 * static_cast<double>(t_));
  const double sigma_z =
      sigma_ * std::sqrt(lambda / (2.0 - lambda) * shrink);

  Eval eval;
  eval.ewma = ewma_;
  eval.sigmas = sigma_z > 0.0 ? std::fabs(ewma_ - mean_) / sigma_z : 0.0;
  eval.alarm = eval.sigmas > config_.limit_sigmas;
  return eval;
}

}  // namespace pmcorr
