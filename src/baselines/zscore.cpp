#include "baselines/zscore.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace pmcorr {

ZScoreDetector ZScoreDetector::Learn(std::span<const double> history,
                                     double alarm_sigmas) {
  RunningStats stats;
  for (double v : history) stats.Add(v);
  ZScoreDetector det;
  det.mean_ = stats.Mean();
  det.sigma_ = std::max(stats.StdDev(), 1e-12);
  det.alarm_sigmas_ = alarm_sigmas;
  return det;
}

double ZScoreDetector::Z(double value) const {
  return (value - mean_) / sigma_;
}

bool ZScoreDetector::Alarm(double value) const {
  return std::fabs(Z(value)) > alarm_sigmas_;
}

}  // namespace pmcorr
