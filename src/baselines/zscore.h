// Naive per-measurement threshold baseline.
//
// Monitors each measurement in isolation and alarms on large z-scores.
// This is the straw man of the paper's introduction: a legitimate flood
// of user requests raises many measurements at once (Figure 1) and this
// detector floods with false positives, while the correlation-based model
// correctly sees unchanged relationships.
#pragma once

#include <span>

namespace pmcorr {

/// Per-measurement z-score detector.
class ZScoreDetector {
 public:
  /// Learns mean/sigma from history; `alarm_sigmas` is the alarm bound.
  static ZScoreDetector Learn(std::span<const double> history,
                              double alarm_sigmas = 3.0);

  /// Signed z-score of one observation.
  double Z(double value) const;

  /// True when |z| exceeds the bound.
  bool Alarm(double value) const;

  double Mean() const { return mean_; }
  double Sigma() const { return sigma_; }

 private:
  double mean_ = 0.0;
  double sigma_ = 1.0;
  double alarm_sigmas_ = 3.0;
};

}  // namespace pmcorr
