// EWMA control chart — the classic statistical-process-control detector,
// one per measurement. Smooths small persistent shifts into detectable
// excursions (more sensitive than a plain z-score to slow drifts), but —
// like every single-measurement detector — it cannot tell a legitimate
// workload surge from a real problem.
#pragma once

#include <cstddef>
#include <span>

namespace pmcorr {

/// Chart parameters (textbook defaults).
struct EwmaConfig {
  /// Smoothing weight of the newest observation (0 < lambda <= 1).
  double lambda = 0.2;
  /// Control-limit width in asymptotic EWMA standard deviations.
  double limit_sigmas = 3.0;
};

/// Streaming EWMA chart with time-varying (start-up-exact) limits.
class EwmaDetector {
 public:
  /// Learns the in-control mean/sigma from history (>= 2 samples).
  static EwmaDetector Learn(std::span<const double> history,
                            const EwmaConfig& config = {});

  /// One streamed observation.
  struct Eval {
    double ewma = 0.0;
    /// Distance of the EWMA from the in-control mean, in units of the
    /// current (start-up-corrected) EWMA standard deviation.
    double sigmas = 0.0;
    bool alarm = false;
  };
  Eval Observe(double value);

  /// Restarts the chart at the in-control mean.
  void Reset();

  double Mean() const { return mean_; }
  double Sigma() const { return sigma_; }

 private:
  EwmaConfig config_;
  double mean_ = 0.0;
  double sigma_ = 1.0;
  double ewma_ = 0.0;
  std::size_t t_ = 0;  // observations since Reset
};

}  // namespace pmcorr
