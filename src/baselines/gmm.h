// Gaussian-mixture baseline (reference [3] in the paper: Guo et al.,
// "Tracking probabilistic correlation of monitoring data for fault
// detection in complex systems", DSN 2006).
//
// The 2-D points of a measurement pair are modeled as a mixture of
// Gaussians; each component's covariance ellipse is a "cluster boundary"
// and points of low mixture density fall outside every ellipse — an
// anomaly. Works for elliptical clusters (Figure 2(c)), fails on the
// arbitrary shapes of Figure 2(d) — the paper's second motivating gap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pmcorr {

/// A 2-D Gaussian component with full covariance.
struct GaussianComponent {
  double weight = 1.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  // Covariance [ [xx, xy], [xy, yy] ].
  double cov_xx = 1.0;
  double cov_xy = 0.0;
  double cov_yy = 1.0;

  /// Log N([x,y]; mean, cov) — -inf for a degenerate covariance.
  double LogDensity(double x, double y) const;

  /// Squared Mahalanobis distance of (x, y) from the component mean.
  double Mahalanobis2(double x, double y) const;
};

/// Fit/detection configuration.
struct GmmConfig {
  std::size_t components = 3;
  std::size_t max_iterations = 120;
  double tolerance = 1e-6;        // relative log-likelihood change
  std::uint64_t seed = 17;        // k-means++-style initialization
  /// Anomaly boundary: the q-quantile of training log densities (points
  /// scoring below it are "outside the cluster boundaries").
  double density_quantile = 0.01;
  /// Covariance regularization added to the diagonal (scaled by data
  /// variance) to keep EM stable.
  double ridge = 1e-6;
};

/// 2-D Gaussian mixture fit by expectation-maximization.
class GaussianMixtureModel {
 public:
  /// Fits the mixture to equal-length x/y vectors (size >= components).
  static GaussianMixtureModel Fit(std::span<const double> x,
                                  std::span<const double> y,
                                  const GmmConfig& config = {});

  const std::vector<GaussianComponent>& Components() const {
    return components_;
  }

  /// Log mixture density at a point.
  double LogDensity(double x, double y) const;

  /// Training log-likelihood per point at convergence.
  double TrainLogLikelihood() const { return train_loglik_; }

  /// The learned anomaly boundary (training density quantile).
  double DensityThreshold() const { return density_threshold_; }

  /// True when the point's density is below the boundary.
  bool IsAnomaly(double x, double y) const;

  /// Score in [0, 1] comparable to a fitness score: 1 well inside the
  /// clusters, approaching 0 at/beyond the boundary.
  double Score(double x, double y) const;

 private:
  std::vector<GaussianComponent> components_;
  double train_loglik_ = 0.0;
  double density_threshold_ = 0.0;
  /// Typical spread of training log densities above the threshold, used
  /// to scale Score().
  double density_scale_ = 1.0;
};

}  // namespace pmcorr
