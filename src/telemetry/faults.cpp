#include "telemetry/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pmcorr {

std::string FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kCorrelationBreak: return "correlation-break";
    case FaultType::kAnomalousJump:    return "anomalous-jump";
    case FaultType::kLevelShift:       return "level-shift";
    case FaultType::kStuckValue:       return "stuck-value";
    case FaultType::kNoiseStorm:       return "noise-storm";
    case FaultType::kDropout:          return "dropout";
    case FaultType::kFlashCrowd:       return "flash-crowd";
    case FaultType::kRegimeShift:      return "regime-shift";
  }
  return "unknown";
}

bool IsLoadShaped(FaultType type) {
  return type == FaultType::kFlashCrowd || type == FaultType::kRegimeShift;
}

FaultInjector::FaultInjector(std::vector<FaultEvent> events,
                             std::uint64_t seed)
    : events_(std::move(events)), rng_(CombineSeed(seed, 0xfa0117)) {}

bool FaultInjector::AnyActive(MachineId machine, MetricKind kind,
                              TimePoint tp) const {
  return std::any_of(events_.begin(), events_.end(),
                     [&](const FaultEvent& e) {
                       return e.Affects(machine, kind, tp);
                     });
}

double FaultInjector::Apply(MachineId machine, MetricKind kind,
                            std::size_t measurement, TimePoint tp,
                            double clean_value, double typical_range,
                            double& noise_sigma_scale) {
  if (measurement >= state_.size()) state_.resize(measurement + 1);
  WalkState& st = state_[measurement];

  const FaultEvent* active = nullptr;
  for (const FaultEvent& e : events_) {
    // Load-shaped events act upstream of the response curves (LoadFactor)
    // and must not shadow a value-shaped event on the same target.
    if (!IsLoadShaped(e.type) && e.Affects(machine, kind, tp)) {
      active = &e;
      break;
    }
  }
  if (active == nullptr) {
    st.active = false;
    st.stuck_set = false;
    return clean_value;
  }

  switch (active->type) {
    case FaultType::kCorrelationBreak: {
      if (!st.active) {
        st.active = true;
        st.value = clean_value;
      }
      // Fast random walk with occasional re-jumps, clamped to a plausible
      // band: values stay in range (no per-metric threshold fires), but
      // the link to the workload is gone and successive samples jump
      // across grid cells — the transition-level signature the model
      // keys on.
      if (rng_.Bernoulli(0.08)) {
        st.value = clean_value + rng_.Uniform(-2.0, 2.0) * typical_range;
      } else {
        st.value += rng_.Normal(0.0, 0.35 * typical_range);
      }
      st.value = std::clamp(st.value, clean_value - 2.0 * typical_range,
                            clean_value + 2.0 * typical_range);
      return std::max(0.0, st.value);
    }
    case FaultType::kAnomalousJump:
      return clean_value + active->magnitude * typical_range;
    case FaultType::kLevelShift:
      return clean_value * (1.0 + active->magnitude);
    case FaultType::kStuckValue: {
      if (!st.stuck_set) {
        st.stuck = clean_value;
        st.stuck_set = true;
      }
      return st.stuck;
    }
    case FaultType::kNoiseStorm:
      noise_sigma_scale = std::max(noise_sigma_scale, active->magnitude);
      return clean_value;
    case FaultType::kDropout:
      return std::numeric_limits<double>::quiet_NaN();
    case FaultType::kFlashCrowd:
    case FaultType::kRegimeShift:
      break;  // handled by LoadFactor; unreachable via the scan above
  }
  return clean_value;
}

double FaultInjector::LoadFactor(MachineId machine, MetricKind kind,
                                 TimePoint tp) const {
  double factor = 1.0;
  for (const FaultEvent& e : events_) {
    if (!IsLoadShaped(e.type) || !e.Affects(machine, kind, tp)) continue;
    double weight = 1.0;
    if (e.type == FaultType::kFlashCrowd && e.end > e.start) {
      // Crowds build and disperse; a step function would teleport every
      // metric to an unseen operating point in one sample. Trapezoid:
      // ramp up over the first quarter of the window, plateau, ramp
      // down over the last quarter.
      const double span = static_cast<double>(e.end - e.start);
      const double into = static_cast<double>(tp - e.start);
      const double ramp = span / 4.0;
      weight = std::min({1.0, into / ramp, (span - into) / ramp});
      weight = std::max(0.0, weight);
    }
    factor *= 1.0 + weight * e.magnitude;
  }
  return factor;
}

}  // namespace pmcorr
