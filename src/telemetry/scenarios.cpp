#include "telemetry/scenarios.h"

#include <stdexcept>

#include "common/rng.h"

namespace pmcorr {
namespace {

MachineId FirstWithRole(const Topology& topo, MachineRole role) {
  for (const auto& m : topo.machines) {
    if (m.role == role) return m.id;
  }
  throw std::runtime_error("scenario topology lacks role " +
                           MachineRoleName(role));
}

const MachineSpec& SpecOf(const Topology& topo, MachineId id) {
  return topo.machines.at(static_cast<std::size_t>(id.value));
}

std::string MeasurementName(const Topology& topo, MachineId id,
                            MetricKind kind) {
  return MetricKindName(kind) + "@" + SpecOf(topo, id).hostname;
}

}  // namespace

TimePoint PaperTestStart() { return ToTimePoint(paper_dates::kTestStart); }

TimePoint PaperTraceStart() { return ToTimePoint(paper_dates::kTraceStart); }

PaperScenario MakeGroupScenario(char group, const ScenarioConfig& config) {
  if (group != 'A' && group != 'B' && group != 'C') {
    throw std::invalid_argument("group must be 'A', 'B' or 'C'");
  }

  PaperScenario scenario;
  scenario.group = std::string(1, group);

  const std::uint64_t seed =
      CombineSeed(config.seed, static_cast<std::uint64_t>(group));

  // Each company gets its own workload character ("the monitoring data
  // from the three information systems have different characteristics and
  // distributions").
  WorkloadConfig workload;
  switch (group) {
    case 'A':
      workload.base_rate = 120.0;
      workload.peak_amplitude = 480.0;
      workload.weekend_factor = 0.55;
      workload.noise_sigma = 0.05;
      workload.peak_time = 14 * kHour + 30 * kMinute;
      break;
    case 'B':
      workload.base_rate = 210.0;
      workload.peak_amplitude = 760.0;
      workload.weekend_factor = 0.48;
      workload.noise_sigma = 0.06;
      workload.peak_time = 15 * kHour;
      workload.floods_per_day = 0.5;
      break;
    case 'C':
      workload.base_rate = 90.0;
      workload.peak_amplitude = 340.0;
      workload.weekend_factor = 0.62;
      workload.noise_sigma = 0.045;
      workload.peak_time = 13 * kHour;
      break;
  }

  TopologyConfig topo_config;
  topo_config.machine_count = config.machine_count;
  Topology topology = MakeTopology(scenario.group, seed, topo_config);

  const MachineId switch_machine =
      FirstWithRole(topology, MachineRole::kSwitch);
  const MachineId db_machine = FirstWithRole(topology, MachineRole::kDatabase);

  const TimePoint trace_start = PaperTraceStart();
  const TimePoint june13 = PaperTestStart();

  // Figure 12's ground-truth problem on the test day: Group A in the
  // morning, Groups B and C in the afternoon.
  std::vector<FaultEvent> faults;
  scenario.problem_machine = switch_machine;
  switch (group) {
    case 'A': {
      scenario.focus_x =
          MeasurementName(topology, switch_machine,
                          MetricKind::kCurrentUtilizationPort);
      scenario.focus_y = MeasurementName(topology, switch_machine,
                                         MetricKind::kPortOutOctetsRate);
      scenario.problem_start = june13 + 7 * kHour + 30 * kMinute;
      scenario.problem_end = june13 + 10 * kHour;
      faults.push_back({switch_machine, scenario.problem_start,
                        scenario.problem_end, FaultType::kAnomalousJump, 1.8,
                        MetricKind::kPortOutOctetsRate});
      break;
    }
    case 'B': {
      scenario.focus_x = MeasurementName(topology, switch_machine,
                                         MetricKind::kPortOutOctetsRate);
      scenario.focus_y = MeasurementName(topology, switch_machine,
                                         MetricKind::kPortInOctetsRate);
      // The paper narrates Group B: an anomalous jump around 2pm, a
      // residual disturbance until 8pm, then recovery.
      scenario.problem_start = june13 + 14 * kHour;
      scenario.problem_end = june13 + 20 * kHour;
      faults.push_back({switch_machine, june13 + 14 * kHour,
                        june13 + 15 * kHour, FaultType::kAnomalousJump, 2.5,
                        MetricKind::kPortOutOctetsRate});
      faults.push_back({switch_machine, june13 + 15 * kHour,
                        june13 + 20 * kHour, FaultType::kLevelShift, 0.35,
                        MetricKind::kPortOutOctetsRate});
      break;
    }
    case 'C': {
      scenario.focus_x = MeasurementName(topology, switch_machine,
                                         MetricKind::kCurrentUtilizationIf);
      scenario.focus_y = MeasurementName(topology, switch_machine,
                                         MetricKind::kPortOutOctetsRate);
      scenario.problem_start = june13 + 13 * kHour;
      scenario.problem_end = june13 + 17 * kHour;
      faults.push_back({switch_machine, scenario.problem_start,
                        scenario.problem_end, FaultType::kCorrelationBreak,
                        1.0, MetricKind::kCurrentUtilizationIf});
      break;
    }
  }

  // Figure 14's localization target: one machine with a long-lived
  // correlation break across the test period (all its metrics drift off
  // the workload), so its average fitness sinks below the fleet's.
  scenario.localization_machine = db_machine;
  if (config.localization_fault) {
    faults.push_back({db_machine, june13,
                      june13 + 9 * kDay, FaultType::kCorrelationBreak, 1.0,
                      std::nullopt});
  }

  scenario.spec.topology = std::move(topology);
  scenario.spec.workload = workload;
  scenario.spec.start = trace_start;
  scenario.spec.samples =
      static_cast<std::size_t>(config.trace_days) *
      static_cast<std::size_t>(kSamplesPerDay);
  scenario.spec.period = kPaperSamplePeriod;
  scenario.spec.faults = std::move(faults);
  scenario.spec.seed = seed;
  return scenario;
}

std::vector<PaperScenario> MakeAllGroupScenarios(const ScenarioConfig& config) {
  return {MakeGroupScenario('A', config), MakeGroupScenario('B', config),
          MakeGroupScenario('C', config)};
}

}  // namespace pmcorr
