#include "telemetry/suite.h"

#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace pmcorr {
namespace {

std::vector<MachineId> WithRole(const Topology& topo, MachineRole role) {
  std::vector<MachineId> ids;
  for (const auto& m : topo.machines) {
    if (m.role == role) ids.push_back(m.id);
  }
  if (ids.empty()) {
    throw std::runtime_error("suite topology lacks role " +
                             MachineRoleName(role));
  }
  return ids;
}

MachineId NthWithRole(const Topology& topo, MachineRole role, std::size_t n) {
  const auto ids = WithRole(topo, role);
  return ids[n < ids.size() ? n : ids.size() - 1];
}

/// A presence `to` far past any trace end: "joined and never leaves".
constexpr TimePoint kForever = std::numeric_limits<TimePoint>::max();

PaperScenario Base(char group, const SuiteConfig& config, std::size_t index) {
  ScenarioConfig base;
  base.machine_count = config.machine_count;
  base.trace_days = config.trace_days;
  // Each scenario gets its own trace world; the index keeps them
  // decorrelated while the whole suite stays pinned to config.seed.
  base.seed = CombineSeed(config.seed, 0x5c000 + index);
  base.localization_fault = false;
  return MakeGroupScenario(group, base);
}

}  // namespace

SuiteConfig SmokeSuiteConfig() {
  SuiteConfig config;
  config.machine_count = 6;
  config.trace_days = 17;
  return config;
}

const QualityScenario* ScenarioSuite::Find(const std::string& name) const {
  for (const auto& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ScenarioSuite MakeScenarioSuite(const SuiteConfig& config) {
  if (config.trace_days < 17) {
    throw std::invalid_argument(
        "suite needs trace_days >= 17 (two test days for the "
        "dynamic-topology scripts)");
  }
  ScenarioSuite suite;
  suite.config = config;
  const TimePoint test = PaperTestStart();

  // 1. paper_baseline — the unmodified Group B narration (Figure 12):
  //    anomalous jump at 2pm, residual level shift until 8pm.
  {
    PaperScenario base = Base('B', config, 1);
    QualityScenario s;
    s.name = "paper_baseline";
    s.description = "Group B June 13 switch fault, unmodified";
    s.group = base.group;
    s.test_start = test;
    s.truth = {{base.problem_start, base.problem_end}};
    s.problem_machine = base.problem_machine;
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 2. cascading_db_failure — the database decouples first, latency and
  //    frontend traffic follow staggered: the classic tiered cascade.
  //    Root cause (and localization target) is the database.
  {
    PaperScenario base = Base('A', config, 2);
    const MachineId db = NthWithRole(base.spec.topology, MachineRole::kDatabase, 0);
    const MachineId app = NthWithRole(base.spec.topology, MachineRole::kAppServer, 0);
    const MachineId web = NthWithRole(base.spec.topology, MachineRole::kWebServer, 0);
    QualityScenario s;
    s.name = "cascading_db_failure";
    s.description = "db correlation break cascades into app latency and web traffic";
    s.group = base.group;
    s.test_start = test;
    base.spec.faults = {
        {db, test + 10 * kHour, test + 16 * kHour,
         FaultType::kCorrelationBreak, 1.0, std::nullopt},
        {app, test + 11 * kHour, test + 15 * kHour,
         FaultType::kCorrelationBreak, 1.0, MetricKind::kResponseTimeMs},
        {web, test + 12 * kHour, test + 14 * kHour + 30 * kMinute,
         FaultType::kCorrelationBreak, 1.0, MetricKind::kIfOutOctetsRate},
    };
    s.truth = {{test + 10 * kHour, test + 16 * kHour}};
    s.problem_machine = db;
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 3. correlated_outage — a shared rack/PDU brownout hits three
  //    machines at once: every metric on each shifts level
  //    simultaneously (thermal throttling), breaking each machine's
  //    correlations with the rest of the fleet for the duration.
  {
    PaperScenario base = Base('C', config, 3);
    const MachineId web = NthWithRole(base.spec.topology, MachineRole::kWebServer, 0);
    const MachineId app = NthWithRole(base.spec.topology, MachineRole::kAppServer, 0);
    const MachineId db = NthWithRole(base.spec.topology, MachineRole::kDatabase, 0);
    QualityScenario s;
    s.name = "correlated_outage";
    s.description = "rack brownout: simultaneous level shift on three machines";
    s.group = base.group;
    s.test_start = test;
    base.spec.faults = {
        {web, test + 13 * kHour, test + 16 * kHour, FaultType::kLevelShift,
         1.5, std::nullopt},
        {app, test + 13 * kHour, test + 16 * kHour, FaultType::kLevelShift,
         1.5, std::nullopt},
        {db, test + 13 * kHour, test + 16 * kHour, FaultType::kLevelShift,
         1.5, std::nullopt},
    };
    s.truth = {{test + 13 * kHour, test + 16 * kHour}};
    s.problem_machine = web;
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 4. flash_crowd — a fleet-wide demand surge. Every metric rides its
  //    normal response curve, so correlations hold: the ground truth is
  //    EMPTY and every alarm a detector raises here is a false alarm.
  {
    PaperScenario base = Base('B', config, 4);
    base.spec.faults.clear();
    for (const auto& m : base.spec.topology.machines) {
      base.spec.faults.push_back({m.id, test + 12 * kHour, test + 15 * kHour,
                                  FaultType::kFlashCrowd, 0.2, std::nullopt});
    }
    QualityScenario s;
    s.name = "flash_crowd";
    s.description = "fleet-wide 1.2x demand surge; correlations hold (benign)";
    s.group = base.group;
    s.test_start = test;
    s.benign = true;
    s.problem_machine = MachineId();
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 5. deploy_regime_change — a bad deploy permanently moves one app
  //    server's CPU onto a different operating curve while its partners
  //    keep the old regime. Truth runs from the deploy to trace end.
  {
    PaperScenario base = Base('B', config, 5);
    const MachineId app = NthWithRole(base.spec.topology, MachineRole::kAppServer, 0);
    QualityScenario s;
    s.name = "deploy_regime_change";
    s.description = "deploy shifts one app server's CPU regime permanently";
    s.group = base.group;
    s.test_start = test;
    const TimePoint deploy = test + 9 * kHour;
    const TimePoint trace_end =
        base.spec.start +
        static_cast<Duration>(base.spec.samples) * base.spec.period;
    base.spec.faults = {{app, deploy, kForever, FaultType::kRegimeShift, 0.9,
                         MetricKind::kCpuUtilization}};
    s.truth = {{deploy, trace_end}};
    s.problem_machine = app;
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 6. switch_noise_storm — flaky switch hardware inflates measurement
  //    noise tenfold on one port counter for an afternoon.
  {
    PaperScenario base = Base('C', config, 6);
    const MachineId sw = NthWithRole(base.spec.topology, MachineRole::kSwitch, 0);
    QualityScenario s;
    s.name = "switch_noise_storm";
    s.description = "10x noise inflation on one switch port counter";
    s.group = base.group;
    s.test_start = test;
    base.spec.faults = {{sw, test + 11 * kHour, test + 14 * kHour,
                         FaultType::kNoiseStorm, 10.0,
                         MetricKind::kPortOutOctetsRate}};
    s.truth = {{test + 11 * kHour, test + 14 * kHour}};
    s.problem_machine = sw;
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 7. scale_out — a web server joins the fleet at the test-day boundary,
  //    warms up for a day, then breaks. Only a monitor that dynamically
  //    adds the new machine's pairs can see the fault at all.
  {
    PaperScenario base = Base('A', config, 7);
    const auto webs = WithRole(base.spec.topology, MachineRole::kWebServer);
    const MachineId joiner = webs.back();
    QualityScenario s;
    s.name = "scale_out";
    s.description = "web server joins at test start, faults on its second day";
    s.group = base.group;
    s.test_start = test;
    base.spec.presence = {{joiner, test, kForever}};
    const TimePoint pairs_live = test + 1 * kDay;
    base.spec.faults = {{joiner, pairs_live + 3 * kHour, pairs_live + 7 * kHour,
                         FaultType::kCorrelationBreak, 1.0, std::nullopt}};
    s.truth = {{pairs_live + 3 * kHour, pairs_live + 7 * kHour}};
    s.problem_machine = joiner;
    s.topology_changes = {{joiner, pairs_live, /*join=*/true,
                           /*learn_from=*/test}};
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  // 8. scale_in — a web server leaves after the first test day (its pairs
  //    must be retired, not alarmed on), while the real fault happens on
  //    the database afterwards. Checks that scoring and localization stay
  //    stable with part of the graph administratively disengaged.
  {
    PaperScenario base = Base('C', config, 8);
    const auto webs = WithRole(base.spec.topology, MachineRole::kWebServer);
    const MachineId leaver = webs.back();
    const MachineId db = NthWithRole(base.spec.topology, MachineRole::kDatabase, 0);
    QualityScenario s;
    s.name = "scale_in";
    s.description = "web server leaves after day one; db faults on day two";
    s.group = base.group;
    s.test_start = test;
    const TimePoint leave = test + 1 * kDay;
    base.spec.presence = {{leaver, 0, leave}};
    base.spec.faults = {{db, leave + 2 * kHour, leave + 6 * kHour,
                         FaultType::kCorrelationBreak, 1.0, std::nullopt}};
    s.truth = {{leave + 2 * kHour, leave + 6 * kHour}};
    s.problem_machine = db;
    s.topology_changes = {{leaver, leave, /*join=*/false, /*learn_from=*/0}};
    s.spec = std::move(base.spec);
    suite.scenarios.push_back(std::move(s));
  }

  return suite;
}

}  // namespace pmcorr
