#include "telemetry/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "telemetry/response.h"

namespace pmcorr {
namespace {

/// Typical dynamic range of a recipe's output over normalized loads in
/// [0, 1] — used to scale jump/walk fault magnitudes.
double TypicalRange(const MetricRecipe& recipe) {
  double lo = recipe.response->Value(0.05);
  double hi = recipe.response->Value(0.95);
  if (lo > hi) std::swap(lo, hi);
  return std::max(hi - lo, 1e-6);
}

}  // namespace

MeasurementFrame GenerateTrace(const TraceSpec& spec) {
  WorkloadModel workload(spec.workload, spec.seed, spec.start, spec.samples,
                         spec.period);
  FaultInjector injector(spec.faults, CombineSeed(spec.seed, 0x1a41));

  // Average traffic share normalizes machine load so a typical machine
  // peaks near utilization ~0.75 at the workload's weekday peak.
  double share_sum = 0.0;
  for (const auto& m : spec.topology.machines) share_sum += m.traffic_share;
  const double avg_share =
      share_sum / std::max<std::size_t>(1, spec.topology.machines.size());
  const double peak_rate = workload.PeakRate();

  MeasurementFrame frame(spec.start, spec.period);
  std::size_t measurement_index = 0;

  for (const auto& machine : spec.topology.machines) {
    const MachinePresence* presence = nullptr;
    for (const auto& p : spec.presence) {
      if (p.machine == machine.id) {
        presence = &p;
        break;
      }
    }

    Rng machine_rng(CombineSeed(
        spec.seed, 0x3a0000 + static_cast<std::uint64_t>(machine.id.value)));

    // Machine-level load wiggle, shared by every metric on the machine:
    // same-machine metrics stay strongly correlated while cross-machine
    // correlations loosen into the cloudy shapes of Figure 2(c).
    Rng machine_wiggle_rng = machine_rng.Fork();
    std::vector<double> machine_u(spec.samples);
    double machine_ar = 0.0;
    for (std::size_t t = 0; t < spec.samples; ++t) {
      const double global_u = workload.RateAt(t) *
                              (machine.traffic_share / avg_share) /
                              (peak_rate * 1.25 * machine.capacity_scale);
      machine_ar = 0.9 * machine_ar + machine_wiggle_rng.Normal(0.0, 0.055);
      machine_u[t] = std::max(0.0, global_u * std::exp(machine_ar));
    }

    for (MetricKind kind : MetricsForRole(machine.role)) {
      Rng recipe_rng = machine_rng.Fork();
      Rng noise_rng = machine_rng.Fork();
      Rng local_rng = machine_rng.Fork();
      const MetricRecipe recipe =
          MakeRecipe(kind, machine.capacity_scale, recipe_rng);
      const double range = TypicalRange(recipe);

      std::vector<double> values(spec.samples);
      double local_ar = 0.0;
      for (std::size_t t = 0; t < spec.samples; ++t) {
        const TimePoint tp =
            spec.start + static_cast<Duration>(t) * spec.period;

        // Per-metric idiosyncratic wiggle on top of the machine load.
        local_ar = 0.9 * local_ar + local_rng.Normal(0.0, 0.05);
        const double u = std::max(
            0.0, machine_u[t] * (1.0 - recipe.local_mix) +
                     machine_u[t] * recipe.local_mix * std::exp(local_ar));

        // Load-shaped faults (flash crowds, regime shifts) scale demand
        // upstream of the response curve; RNG-free, so traces without
        // them are bitwise unchanged.
        const double load_factor = injector.LoadFactor(machine.id, kind, tp);

        double clean = recipe.response->Value(u * load_factor);
        double noise_scale = 1.0;
        clean = injector.Apply(machine.id, kind, measurement_index, tp,
                               clean, range, noise_scale);
        NoiseConfig noise = recipe.noise;
        noise.relative_sigma *= noise_scale;
        noise.additive_sigma *= noise_scale;
        double value = ApplyNoise(clean, noise, noise_rng, recipe.floor);
        if (recipe.ceil > 0.0) value = std::min(value, recipe.ceil);
        // Presence is applied last: the full series is always computed so
        // RNG streams (and the present span's values) never shift.
        if (presence != nullptr && !presence->Present(tp)) {
          value = std::numeric_limits<double>::quiet_NaN();
        }
        values[t] = value;
      }

      MeasurementInfo info;
      info.machine = machine.id;
      info.kind = kind;
      info.name = MetricKindName(kind) + "@" + machine.hostname;
      frame.Add(std::move(info),
                TimeSeries(spec.start, spec.period, std::move(values)));
      ++measurement_index;
    }
  }
  return frame;
}

}  // namespace pmcorr
