// The workload driver — the hidden common factor behind measurement
// correlations.
//
// The paper's premise is that "some outside factors, such as work loads
// and number of user requests, may affect [measurements] simultaneously".
// WorkloadModel synthesizes that factor: a deterministic request-rate
// series with a diurnal peak, a weekend dip (Figure 15's periodic
// pattern), slow drift (exercising online grid extension), AR(1) noise,
// and occasional legitimate request floods — the "many measurements rise
// together but correlations hold" scenario of Figure 1 that single-metric
// detectors misread as anomalies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace pmcorr {

/// Tuning knobs of the workload driver.
struct WorkloadConfig {
  /// Requests/s in the overnight trough.
  double base_rate = 120.0;

  /// Extra requests/s at the daily peak.
  double peak_amplitude = 480.0;

  /// Sharpness of the daily peak (von-Mises-style concentration).
  double peak_sharpness = 1.6;

  /// Seconds into the day of the busiest instant (default 14:30 — the
  /// paper's ground-truth problems cluster in business hours).
  Duration peak_time = 14 * kHour + 30 * kMinute;

  /// Multiplier applied on Saturdays/Sundays (< 1: quieter weekends).
  double weekend_factor = 0.55;

  /// Linear drift of the base level over the whole horizon, as a
  /// fraction of base_rate (0.25 = +25% by the end). Drives the gradual
  /// distribution evolution of Section 4.1.
  double drift_fraction = 0.15;

  /// AR(1) coefficient and innovation sigma (relative) of the noise.
  double noise_ar = 0.85;
  double noise_sigma = 0.05;

  /// Expected number of legitimate request floods per day.
  double floods_per_day = 0.35;
  /// Flood peak multiplier on the current rate.
  double flood_magnitude = 1.9;
  /// Flood duration.
  Duration flood_duration = 90 * kMinute;
};

/// Precomputed request-rate series over a uniform grid.
class WorkloadModel {
 public:
  /// Builds the series for `samples` points starting at `start`, one per
  /// `period`. The same (config, seed, grid) is bit-reproducible.
  WorkloadModel(const WorkloadConfig& config, std::uint64_t seed,
                TimePoint start, std::size_t samples,
                Duration period = kPaperSamplePeriod);

  std::size_t SampleCount() const { return rates_.size(); }
  TimePoint Start() const { return start_; }
  Duration Period() const { return period_; }

  /// Request rate at sample `i` (requests/s, always positive).
  double RateAt(std::size_t i) const { return rates_.at(i); }
  const std::vector<double>& Rates() const { return rates_; }

  /// True when sample `i` falls inside a legitimate flood burst.
  bool InFlood(std::size_t i) const { return flood_.at(i); }

  /// The deterministic seasonal shape in [0, 1] (diurnal x weekly), with
  /// no noise/drift/floods — exposed for tests and plots.
  static double SeasonalShape(TimePoint tp, const WorkloadConfig& config);

  /// A scale useful for normalizing: the rate at the deterministic
  /// weekday peak (base + amplitude), before noise.
  double PeakRate() const;

 private:
  WorkloadConfig config_;
  TimePoint start_;
  Duration period_;
  std::vector<double> rates_;
  std::vector<char> flood_;
};

}  // namespace pmcorr
