#include "telemetry/queueing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace pmcorr {

MmcQueueSimulator::MmcQueueSimulator(QueueConfig config) : config_(config) {
  PMCORR_DASSERT(config_.servers > 0);
  PMCORR_DASSERT(config_.service_rate > 0.0);
}

QueueSimStats MmcQueueSimulator::Run(double arrival_rate,
                                     double duration_seconds, Rng& rng) {
  PMCORR_DASSERT(arrival_rate >= 0.0);
  PMCORR_DASSERT(duration_seconds > 0.0);

  const double end = now_ + duration_seconds;
  const double mu = config_.service_rate;
  const std::size_t c = config_.servers;

  QueueSimStats stats;
  std::vector<double> responses;
  std::vector<double> waits;
  double busy_area = 0.0;       // integral of busy servers over time
  double in_system_area = 0.0;  // integral of requests in system

  while (now_ < end) {
    const std::size_t busy = in_service_.size();
    const double service_flow = static_cast<double>(busy) * mu;
    const double total_rate = arrival_rate + service_flow;

    double dt;
    if (total_rate <= 0.0) {
      // Idle system, no arrivals: fast-forward.
      dt = end - now_;
      busy_area += static_cast<double>(busy) * dt;
      in_system_area += static_cast<double>(InSystem()) * dt;
      now_ = end;
      break;
    }
    dt = rng.Exponential(total_rate);
    if (now_ + dt > end) {
      const double tail = end - now_;
      busy_area += static_cast<double>(busy) * tail;
      in_system_area += static_cast<double>(InSystem()) * tail;
      now_ = end;
      break;
    }
    busy_area += static_cast<double>(busy) * dt;
    in_system_area += static_cast<double>(InSystem()) * dt;
    now_ += dt;
    const bool is_arrival = rng.Uniform() * total_rate < arrival_rate;

    if (is_arrival) {
      ++stats.arrivals;
      if (config_.capacity > 0 && InSystem() >= config_.capacity) {
        ++stats.dropped;
        continue;
      }
      if (in_service_.size() < c) {
        in_service_.push_back(now_);   // starts service immediately
        waits.push_back(0.0);
      } else {
        waiting_.push_back(now_);
      }
    } else {
      // A service completion: exponential services are exchangeable, so
      // the finishing request is uniform over the busy servers.
      PMCORR_DASSERT(!in_service_.empty());
      const std::size_t slot = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(in_service_.size()) - 1));
      const double arrival_time = in_service_[slot];
      in_service_[slot] = in_service_.back();
      in_service_.pop_back();
      ++stats.completed;
      responses.push_back(now_ - arrival_time);
      if (!waiting_.empty()) {
        const double queued_arrival = waiting_.front();
        waiting_.pop_front();
        waits.push_back(now_ - queued_arrival);
        in_service_.push_back(queued_arrival);
      }
    }
  }

  if (!responses.empty()) {
    stats.mean_response = Mean(responses);
    stats.p95_response = Quantile(responses, 0.95).value_or(0.0);
  }
  if (!waits.empty()) stats.mean_wait = Mean(waits);
  stats.utilization =
      busy_area / (static_cast<double>(c) * duration_seconds);
  stats.mean_in_system = in_system_area / duration_seconds;
  return stats;
}

double ErlangC(double offered_load, std::size_t servers) {
  PMCORR_DASSERT(servers > 0);
  const double a = offered_load;
  const auto c = static_cast<double>(servers);
  if (a >= c) return 1.0;

  // Erlang-B by the stable recurrence, then convert to Erlang-C.
  double b = 1.0;  // B(0, a) = 1
  for (std::size_t k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double rho = a / c;
  return b / (1.0 - rho + rho * b);
}

double MmcMeanResponse(double arrival_rate, double service_rate,
                       std::size_t servers) {
  PMCORR_DASSERT(arrival_rate < service_rate * static_cast<double>(servers));
  const double a = arrival_rate / service_rate;
  const double pw = ErlangC(a, servers);
  const double wq =
      pw / (static_cast<double>(servers) * service_rate - arrival_rate);
  return wq + 1.0 / service_rate;
}

}  // namespace pmcorr
