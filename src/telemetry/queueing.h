// Event-driven M/M/c/K queue simulator.
//
// The trace generator's QueueingResponse maps load to response time with
// the closed-form M/M/1-style curve base/(1-rho). This simulator is the
// ground truth behind that shortcut: a continuous-time Markov simulation
// of a c-server queue with Poisson arrivals, exponential service and a
// finite waiting room. Tests validate the generator's curve (and the
// Erlang-C formula) against it, which is what makes the synthetic
// response-time metrics a defensible substitute for the paper's
// production traces.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/rng.h"

namespace pmcorr {

/// Queue parameters.
struct QueueConfig {
  /// Parallel servers (c).
  std::size_t servers = 4;
  /// Per-server service rate mu (requests/second).
  double service_rate = 25.0;
  /// Maximum requests in the system (K, in service + waiting); arrivals
  /// beyond it are dropped. 0 = effectively unbounded.
  std::size_t capacity = 10000;
};

/// Aggregates over one simulated interval.
struct QueueSimStats {
  std::size_t arrivals = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;

  /// Mean time in system (seconds) over completed requests.
  double mean_response = 0.0;
  /// Mean waiting time before service starts (seconds).
  double mean_wait = 0.0;
  /// 95th percentile of response times.
  double p95_response = 0.0;
  /// Fraction of server-time spent busy.
  double utilization = 0.0;
  /// Time-averaged number of requests in the system.
  double mean_in_system = 0.0;
  /// Dropped / arrivals.
  double DropFraction() const {
    return arrivals ? static_cast<double>(dropped) /
                          static_cast<double>(arrivals)
                    : 0.0;
  }
};

/// The simulator; state (requests in flight) persists across Run calls,
/// so piecewise-constant arrival-rate schedules compose naturally.
class MmcQueueSimulator {
 public:
  explicit MmcQueueSimulator(QueueConfig config);

  /// Simulates `duration_seconds` of Poisson arrivals at `arrival_rate`
  /// (requests/second); returns the interval's aggregates.
  QueueSimStats Run(double arrival_rate, double duration_seconds, Rng& rng);

  /// Requests currently in the system.
  std::size_t InSystem() const { return in_service_.size() + waiting_.size(); }

  const QueueConfig& Config() const { return config_; }

 private:
  QueueConfig config_;
  double now_ = 0.0;
  /// Arrival times of requests currently being served (exchangeable
  /// under exponential service, so completions pick uniformly).
  std::vector<double> in_service_;
  /// Arrival times of requests waiting, FIFO.
  std::deque<double> waiting_;
};

/// Erlang-C: probability an arrival must wait in an M/M/c queue with
/// offered load a = lambda/mu and c servers (requires a < c).
double ErlangC(double offered_load, std::size_t servers);

/// Closed-form M/M/c mean response time (seconds): Erlang-C waiting time
/// plus one service time. Requires lambda < c * mu.
double MmcMeanResponse(double arrival_rate, double service_rate,
                       std::size_t servers);

}  // namespace pmcorr
