// Ground-truth fault injection.
//
// The paper evaluates against problems "identified by the system
// administrators" in proprietary traces; our substitute injects faults
// with exact windows and targets so detection (Figure 12) and
// localization (Figure 14) can be checked against known truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"

namespace pmcorr {

/// What goes wrong during a fault window.
enum class FaultType : std::uint8_t {
  /// The metric decouples from the workload and wanders independently —
  /// values stay in plausible ranges but the *correlation* breaks (the
  /// paper's "real problem" signature: values normal, links broken).
  kCorrelationBreak,

  /// A sudden jump far outside the recent operating region — the Group B
  /// event the paper narrates (a jump into a distant grid cell).
  kAnomalousJump,

  /// Persistent multiplicative shift for the duration of the window.
  kLevelShift,

  /// The metric freezes at its window-entry value (agent/driver hang).
  kStuckValue,

  /// Noise variance inflates tenfold (flaky hardware, retry storms).
  kNoiseStorm,

  /// The collector stops reporting: samples in the window are NaN
  /// (exercises the engine's missing-data path).
  kDropout,

  /// A legitimate demand surge: the machine's *load* is multiplied by
  /// (1 + magnitude) for the window, and every metric responds through
  /// its normal response curve. Correlations hold, so a detector that
  /// models relationships (rather than levels) should stay quiet — flash
  /// crowds are the canonical false-positive bait.
  kFlashCrowd,

  /// A deploy-shaped regime change: from `start` onward the *load seen
  /// by the filtered metric* is multiplied by (1 + magnitude) while its
  /// partners keep the old regime, permanently breaking the learned
  /// relationship (new binary, changed cache behavior). Unlike
  /// kLevelShift this acts before the response curve, so the metric
  /// moves along a plausible-but-different operating curve.
  kRegimeShift,
};

std::string FaultTypeName(FaultType type);

/// Load-shaped types act on the normalized load upstream of the response
/// curves (via FaultInjector::LoadFactor) instead of on emitted values.
bool IsLoadShaped(FaultType type);

/// One injected problem: which machine, when, what kind, how strong.
struct FaultEvent {
  MachineId machine;
  TimePoint start = 0;
  TimePoint end = 0;  // half-open [start, end)
  FaultType type = FaultType::kCorrelationBreak;

  /// Interpretation depends on type: jump/level-shift magnitude as a
  /// multiple of the metric's typical dynamic range; noise multiplier for
  /// kNoiseStorm. Unused by kStuckValue.
  double magnitude = 1.0;

  /// When set, only metrics of this kind on the machine are affected;
  /// otherwise every metric on the machine is.
  std::optional<MetricKind> metric_filter;

  bool Active(TimePoint tp) const { return start <= tp && tp < end; }
  bool Affects(MachineId m, MetricKind kind, TimePoint tp) const {
    return machine == m && Active(tp) &&
           (!metric_filter || *metric_filter == kind);
  }
};

/// Per-metric mutable state the injector keeps while a trace is being
/// generated (stuck values, random-walk state for correlation breaks).
class FaultInjector {
 public:
  explicit FaultInjector(std::vector<FaultEvent> events, std::uint64_t seed);

  const std::vector<FaultEvent>& Events() const { return events_; }

  /// Transforms a clean metric value. Called once per (measurement,
  /// sample) in time order. `typical_range` scales jump magnitudes;
  /// `noise_sigma` lets kNoiseStorm inflate it (returned by reference).
  double Apply(MachineId machine, MetricKind kind, std::size_t measurement,
               TimePoint tp, double clean_value, double typical_range,
               double& noise_sigma_scale);

  /// True if any event affects the (machine, kind) pair at `tp`.
  bool AnyActive(MachineId machine, MetricKind kind, TimePoint tp) const;

  /// Multiplier the load-shaped events (kFlashCrowd, kRegimeShift) put
  /// on the normalized load feeding (machine, kind) at `tp`; 1.0 when
  /// none is active. Overlapping events compound. Deterministic and
  /// RNG-free, so traces without load events are bitwise unchanged.
  double LoadFactor(MachineId machine, MetricKind kind, TimePoint tp) const;

 private:
  struct WalkState {
    bool active = false;
    double value = 0.0;
    double stuck = 0.0;
    bool stuck_set = false;
  };

  std::vector<FaultEvent> events_;
  Rng rng_;
  /// Keyed by dense measurement index supplied by the generator.
  std::vector<WalkState> state_;
};

}  // namespace pmcorr
