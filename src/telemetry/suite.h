// ScenarioSuite — the named detection-quality scenarios the scorecard
// (src/engine/scorecard.h) runs pmcorr and the baselines over.
//
// Each scenario layers an operationally-motivated failure shape on a
// MakeGroupScenario base: cascading faults, correlated multi-machine
// outages, flash crowds (benign by construction), deploy-shaped regime
// changes, and dynamic topology (machines joining/leaving mid-trace).
// Every scenario carries its ground-truth windows and the machine a
// localizer should rank first, so precision/recall/F1, time-to-detect
// and localization rank are all computable against exact truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/scenarios.h"

namespace pmcorr {

/// Ground-truth anomaly window, half-open [start, end).
struct TruthWindow {
  TimePoint start = 0;
  TimePoint end = 0;
};

/// A scripted mid-run topology change the monitoring side is expected to
/// replay: at `at`, either add the machine's pairs to the running monitor
/// (join; models learned from the warmup slice [learn_from, at)) or
/// retire them (leave). The trace side is already encoded in
/// TraceSpec::presence; this is the monitor-side half of the script.
struct TopologyChange {
  MachineId machine;
  TimePoint at = 0;
  bool join = true;
  /// Join only: start of the warmup window the new pairs learn from.
  TimePoint learn_from = 0;
};

/// One named scenario: a trace spec plus everything needed to score a
/// detector's output against ground truth.
struct QualityScenario {
  std::string name;
  std::string description;
  std::string group;  // base paper group ("A", "B" or "C")
  TraceSpec spec;

  /// Scoring starts here (the paper's June 13 test day); everything
  /// before is training/holdout material.
  TimePoint test_start = 0;

  /// Empty for benign scenarios — any alarm is then a false alarm.
  std::vector<TruthWindow> truth;

  /// The machine a localizer should rank first; meaningless when benign.
  MachineId problem_machine;

  std::vector<TopologyChange> topology_changes;
  bool benign = false;

  TimePoint TraceEnd() const {
    return spec.start + static_cast<Duration>(spec.samples) * spec.period;
  }
};

/// Suite-wide knobs. The defaults are the "full" configuration the
/// committed BENCH_quality.json is generated with; SmokeSuiteConfig()
/// is the reduced per-PR CI shape.
struct SuiteConfig {
  std::size_t machine_count = 10;
  /// Days from May 29; must be >= 17 so at least two test days exist
  /// (the dynamic-topology scenarios script day-2 events).
  int trace_days = 19;
  std::uint64_t seed = 2008;
};

/// Reduced configuration for per-PR CI: fewer machines, shorter trace.
SuiteConfig SmokeSuiteConfig();

/// The full named suite, in a fixed order. Deterministic: identical
/// configs always produce identical scenarios (bit-identical traces).
struct ScenarioSuite {
  SuiteConfig config;
  std::vector<QualityScenario> scenarios;

  /// nullptr when no scenario has that name.
  const QualityScenario* Find(const std::string& name) const;
};

ScenarioSuite MakeScenarioSuite(const SuiteConfig& config = {});

}  // namespace pmcorr
