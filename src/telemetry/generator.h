// TraceGenerator — turns (topology, workload, faults, seed) into a
// MeasurementFrame: the synthetic stand-in for the paper's proprietary
// monitoring data.
//
// Generation pipeline, per machine and sample:
//   global request rate  ->  machine load (traffic share, local AR(1)
//   wiggle, capacity)    ->  per-metric response function  ->  fault
//   injection            ->  measurement noise  ->  clamping.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/faults.h"
#include "telemetry/topology.h"
#include "telemetry/workload.h"
#include "timeseries/frame.h"

namespace pmcorr {

/// Everything needed to generate one group's trace.
struct TraceSpec {
  Topology topology;
  WorkloadConfig workload;
  TimePoint start = 0;
  std::size_t samples = 0;
  Duration period = kPaperSamplePeriod;
  std::vector<FaultEvent> faults;
  std::uint64_t seed = 1;
};

/// Generates the frame described by `spec`; bit-reproducible for a fixed
/// spec. Measurement names follow "<MetricKindName>@<hostname>".
MeasurementFrame GenerateTrace(const TraceSpec& spec);

}  // namespace pmcorr
