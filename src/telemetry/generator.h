// TraceGenerator — turns (topology, workload, faults, seed) into a
// MeasurementFrame: the synthetic stand-in for the paper's proprietary
// monitoring data.
//
// Generation pipeline, per machine and sample:
//   global request rate  ->  machine load (traffic share, local AR(1)
//   wiggle, capacity)    ->  per-metric response function  ->  fault
//   injection            ->  measurement noise  ->  clamping.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/faults.h"
#include "telemetry/topology.h"
#include "telemetry/workload.h"
#include "timeseries/frame.h"

namespace pmcorr {

/// Dynamic topology: the half-open window [from, to) during which a
/// machine actually reports. Outside it every metric on the machine is
/// NaN — the frame keeps the full-width column layout so downstream
/// consumers see a machine "join" as columns coming alive mid-trace.
/// Values inside the window are bitwise identical to an always-present
/// run: generation always computes the full series and only then blanks
/// the absent span, so RNG streams never shift.
struct MachinePresence {
  MachineId machine;
  TimePoint from = 0;
  TimePoint to = 0;  // half-open; use a far-future value for "never leaves"

  bool Present(TimePoint tp) const { return from <= tp && tp < to; }
};

/// Everything needed to generate one group's trace.
struct TraceSpec {
  Topology topology;
  WorkloadConfig workload;
  TimePoint start = 0;
  std::size_t samples = 0;
  Duration period = kPaperSamplePeriod;
  std::vector<FaultEvent> faults;
  /// Machines without an entry are present for the whole trace.
  std::vector<MachinePresence> presence;
  std::uint64_t seed = 1;
};

/// Generates the frame described by `spec`; bit-reproducible for a fixed
/// spec. Measurement names follow "<MetricKindName>@<hostname>".
MeasurementFrame GenerateTrace(const TraceSpec& spec);

}  // namespace pmcorr
