#include "telemetry/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace pmcorr {
namespace {
constexpr double kTwoPi = 6.283185307179586;
}

double WorkloadModel::SeasonalShape(TimePoint tp,
                                    const WorkloadConfig& config) {
  const double day_phase =
      kTwoPi *
      (static_cast<double>(SecondsIntoDay(tp) - config.peak_time)) /
      static_cast<double>(kDay);
  // von-Mises-style bump: 1 at the peak instant, ~0 in the trough.
  const double diurnal = std::exp(config.peak_sharpness *
                                  (std::cos(day_phase) - 1.0));
  const double weekly = IsWeekend(tp) ? config.weekend_factor : 1.0;
  return diurnal * weekly;
}

WorkloadModel::WorkloadModel(const WorkloadConfig& config, std::uint64_t seed,
                             TimePoint start, std::size_t samples,
                             Duration period)
    : config_(config), start_(start), period_(period) {
  PMCORR_DASSERT(period > 0);
  rates_.resize(samples);
  flood_.assign(samples, 0);

  Rng rng(CombineSeed(seed, 0x308c10ad));

  // Pre-draw flood windows: a Poisson-ish process realized as a per-sample
  // Bernoulli start probability.
  const double samples_per_day =
      static_cast<double>(kDay) / static_cast<double>(period);
  const double start_prob = config.floods_per_day / samples_per_day;
  const auto flood_len = static_cast<std::size_t>(
      std::max<Duration>(1, config.flood_duration / period));
  std::vector<double> flood_boost(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    if (!rng.Bernoulli(start_prob)) continue;
    const double magnitude =
        std::max(1.05, rng.Normal(config.flood_magnitude,
                                  0.15 * config.flood_magnitude));
    for (std::size_t j = i; j < std::min(i + flood_len, samples); ++j) {
      // Raised-cosine envelope so floods ramp in and out smoothly.
      const double pos = static_cast<double>(j - i) /
                         static_cast<double>(flood_len);
      const double envelope = 0.5 * (1.0 - std::cos(kTwoPi * pos));
      flood_boost[j] =
          std::max(flood_boost[j], (magnitude - 1.0) * envelope);
      flood_[j] = 1;
    }
  }

  double ar_state = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const TimePoint tp = start_ + static_cast<Duration>(i) * period_;
    const double season = SeasonalShape(tp, config_);
    const double drift =
        1.0 + config_.drift_fraction *
                  (static_cast<double>(i) /
                   std::max<double>(1.0, static_cast<double>(samples - 1)));
    ar_state = config_.noise_ar * ar_state +
               rng.Normal(0.0, config_.noise_sigma);
    const double noise = std::exp(ar_state);
    const double clean =
        (config_.base_rate + config_.peak_amplitude * season) * drift;
    rates_[i] = std::max(1.0, clean * noise * (1.0 + flood_boost[i]));
  }
}

double WorkloadModel::PeakRate() const {
  return config_.base_rate + config_.peak_amplitude;
}

}  // namespace pmcorr
