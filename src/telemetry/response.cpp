#include "telemetry/response.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace pmcorr {

LinearResponse::LinearResponse(double offset, double gain)
    : offset_(offset), gain_(gain) {}

double LinearResponse::Value(double u) const { return offset_ + gain_ * u; }

std::string LinearResponse::Describe() const {
  return "linear(offset=" + FormatDouble(offset_, 2) +
         ", gain=" + FormatDouble(gain_, 2) + ")";
}

SaturatingResponse::SaturatingResponse(double cap, double knee)
    : cap_(cap), knee_(knee) {
  PMCORR_DASSERT(knee_ > 0.0);
}

double SaturatingResponse::Value(double u) const {
  u = std::max(u, 0.0);
  return cap_ * u / (u + knee_);
}

std::string SaturatingResponse::Describe() const {
  return "saturating(cap=" + FormatDouble(cap_, 2) +
         ", knee=" + FormatDouble(knee_, 3) + ")";
}

QueueingResponse::QueueingResponse(double base, double u_max)
    : base_(base), u_max_(u_max) {
  PMCORR_DASSERT(u_max_ > 0.0 && u_max_ < 1.0);
}

double QueueingResponse::Value(double u) const {
  const double rho = std::clamp(u, 0.0, u_max_);
  return base_ / (1.0 - rho);
}

std::string QueueingResponse::Describe() const {
  return "queueing(base=" + FormatDouble(base_, 2) +
         ", u_max=" + FormatDouble(u_max_, 2) + ")";
}

RegimeResponse::RegimeResponse(double threshold, double low_offset,
                               double low_gain, double high_offset,
                               double high_gain)
    : threshold_(threshold),
      low_offset_(low_offset),
      low_gain_(low_gain),
      high_offset_(high_offset),
      high_gain_(high_gain) {}

double RegimeResponse::Value(double u) const {
  if (u < threshold_) return low_offset_ + low_gain_ * u;
  return high_offset_ + high_gain_ * u;
}

std::string RegimeResponse::Describe() const {
  return "regime(threshold=" + FormatDouble(threshold_, 3) + ")";
}

double ApplyNoise(double clean, const NoiseConfig& noise, Rng& rng,
                  double floor) {
  double value = clean;
  if (noise.relative_sigma > 0.0) {
    value *= rng.LogNormal(0.0, noise.relative_sigma);
  }
  if (noise.additive_sigma > 0.0) {
    value += rng.Normal(0.0, noise.additive_sigma);
  }
  return std::max(value, floor);
}

MetricRecipe MakeRecipe(MetricKind kind, double capacity_scale, Rng& rng) {
  MetricRecipe recipe;
  recipe.kind = kind;
  const double cap = std::max(capacity_scale, 0.2);

  switch (kind) {
    case MetricKind::kIfInOctetsRate: {
      // Bytes/s in: essentially proportional to request rate (Fig 2b).
      const double gain = 1.6e5 * rng.LogNormal(0.0, 0.2);
      recipe.response = std::make_shared<LinearResponse>(
          rng.Uniform(500.0, 2500.0), gain);
      recipe.noise = {0.04, 0.0};
      recipe.local_mix = 0.12;
      break;
    }
    case MetricKind::kIfOutOctetsRate: {
      // Responses are larger than requests: higher gain, same shape.
      const double gain = 4.5e5 * rng.LogNormal(0.0, 0.2);
      recipe.response = std::make_shared<LinearResponse>(
          rng.Uniform(1000.0, 5000.0), gain);
      recipe.noise = {0.04, 0.0};
      recipe.local_mix = 0.12;
      break;
    }
    case MetricKind::kPortInOctetsRate:
    case MetricKind::kPortOutOctetsRate: {
      const double gain = 3.0e5 * rng.LogNormal(0.0, 0.25);
      recipe.response = std::make_shared<LinearResponse>(
          rng.Uniform(2000.0, 8000.0), gain);
      recipe.noise = {0.05, 0.0};
      recipe.local_mix = 0.1;
      break;
    }
    case MetricKind::kCurrentUtilizationIf:
    case MetricKind::kCurrentUtilizationPort: {
      // Percent utilization saturating toward 100 — the bent Fig 2(d)
      // relationship against the (linear) octet counters. A low knee puts
      // the operating range deep into the curve so no line explains it.
      recipe.response = std::make_shared<SaturatingResponse>(
          100.0, rng.Uniform(0.15, 0.35) * cap);
      recipe.noise = {0.03, 0.4};
      recipe.ceil = 100.0;
      recipe.local_mix = 0.1;
      break;
    }
    case MetricKind::kCpuUtilization: {
      recipe.response = std::make_shared<SaturatingResponse>(
          100.0, rng.Uniform(0.25, 0.55) * cap);
      recipe.noise = {0.05, 1.0};
      recipe.ceil = 100.0;
      recipe.local_mix = 0.25;
      break;
    }
    case MetricKind::kMemoryUtilization: {
      // Memory follows load weakly and in regimes (cache fill levels).
      recipe.response = std::make_shared<RegimeResponse>(
          rng.Uniform(0.35, 0.55), 35.0 * rng.LogNormal(0.0, 0.1), 20.0,
          52.0 * rng.LogNormal(0.0, 0.1), 38.0);
      recipe.noise = {0.02, 0.8};
      recipe.ceil = 100.0;
      recipe.local_mix = 0.35;
      break;
    }
    case MetricKind::kFreeMemory: {
      recipe.response = std::make_shared<LinearResponse>(
          8e9 * rng.LogNormal(0.0, 0.15), -3e9);
      recipe.noise = {0.02, 0.0};
      recipe.local_mix = 0.3;
      break;
    }
    case MetricKind::kDiskIoThroughput: {
      recipe.response = std::make_shared<RegimeResponse>(
          rng.Uniform(0.4, 0.6), rng.Uniform(80.0, 160.0),
          900.0 * rng.LogNormal(0.0, 0.2), rng.Uniform(300.0, 600.0),
          1600.0 * rng.LogNormal(0.0, 0.2));
      recipe.noise = {0.08, 5.0};
      recipe.local_mix = 0.3;
      break;
    }
    case MetricKind::kResponseTimeMs: {
      recipe.response = std::make_shared<QueueingResponse>(
          rng.Uniform(12.0, 35.0), 0.93);
      recipe.noise = {0.09, 0.5};
      recipe.local_mix = 0.2;
      break;
    }
    case MetricKind::kRequestRate: {
      recipe.response = std::make_shared<LinearResponse>(0.0, 1.0);
      recipe.noise = {0.01, 0.0};
      recipe.local_mix = 0.0;
      break;
    }
  }
  return recipe;
}

}  // namespace pmcorr
