// Canned experiment scenarios mirroring the paper's Section 6 setup.
//
// Three groups (companies A, B, C), each with ~50 machines, one month of
// data (May 29 – June 27, 2008) sampled every 6 minutes. Each group gets
// a distinct workload character and a ground-truth problem on one machine
// during the June 13 test day: Group A in the morning, Groups B and C in
// the afternoon — matching Figure 12. A second, longer-lived faulty
// machine per group supports the localization experiment (Figure 14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/generator.h"

namespace pmcorr {

/// A fully specified group scenario plus its ground truth.
struct PaperScenario {
  std::string group;  // "A", "B" or "C"
  TraceSpec spec;

  /// The measurement pair Figure 12 plots for this group (display names).
  std::string focus_x;
  std::string focus_y;

  /// The machine hosting the June 13 problem (Figure 12 ground truth).
  MachineId problem_machine;
  /// Problem window on June 13 (trace-local time).
  TimePoint problem_start = 0;
  TimePoint problem_end = 0;

  /// The long-fault machine for the localization experiment (Figure 14).
  MachineId localization_machine;
};

/// Options for scenario construction.
struct ScenarioConfig {
  std::size_t machine_count = 50;
  int trace_days = 30;          // May 29 .. June 27
  std::uint64_t seed = 2008;    // base seed; group letter is mixed in
  /// Include the long fault driving Figure 14 (on by default).
  bool localization_fault = true;
};

/// Builds the scenario for `group` in {'A','B','C'}; identical inputs
/// always produce the identical scenario.
PaperScenario MakeGroupScenario(char group, const ScenarioConfig& config = {});

/// All three groups.
std::vector<PaperScenario> MakeAllGroupScenarios(const ScenarioConfig& config = {});

/// Utility: the TimePoint of the paper's test-set start (June 13, 2008).
TimePoint PaperTestStart();

/// Utility: the TimePoint of the trace start (May 29, 2008).
TimePoint PaperTraceStart();

}  // namespace pmcorr
