// Simulated datacenter topology.
//
// The paper's traces come from three companies, each running an Internet
// service on 100+ servers with ~3000 monitored measurements; experiments
// use 100 measurements from ~50 machines per group. We model a group as a
// set of machines with roles (web / application / database / switch);
// each role exposes the metric kinds the paper names in its figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace pmcorr {

/// What a machine does — determines its metrics and response shapes.
enum class MachineRole : std::uint8_t {
  kWebServer,
  kAppServer,
  kDatabase,
  kSwitch,
};

std::string MachineRoleName(MachineRole role);

/// Metric kinds exposed by a role, in generation order.
std::vector<MetricKind> MetricsForRole(MachineRole role);

/// Static description of one machine in a group.
struct MachineSpec {
  MachineId id;
  std::string hostname;
  MachineRole role = MachineRole::kWebServer;
  /// Relative capacity: utilization at a given load scales by 1/capacity.
  double capacity_scale = 1.0;
  /// Relative share of the group's request traffic routed here.
  double traffic_share = 1.0;
};

/// One company's infrastructure.
struct Topology {
  std::string group_name;
  std::vector<MachineSpec> machines;

  /// Total measurements the topology generates (sum of role metrics).
  std::size_t MeasurementCount() const;
};

/// Options for the deterministic topology builder.
struct TopologyConfig {
  std::size_t machine_count = 50;
  /// Role mix fractions (normalized internally): web, app, db, switch.
  double web_fraction = 0.4;
  double app_fraction = 0.3;
  double db_fraction = 0.15;
  double switch_fraction = 0.15;
  /// Log-normal sigma of per-machine capacity / traffic-share variation.
  double heterogeneity = 0.25;
};

/// Builds a group topology with `config.machine_count` machines; the same
/// (name, seed, config) always yields the same topology.
Topology MakeTopology(const std::string& group_name, std::uint64_t seed,
                      const TopologyConfig& config = {});

}  // namespace pmcorr
