// Response functions: how a metric reacts to offered load.
//
// These produce the correlation shapes of the paper's Figure 2:
//  * linear     — traffic counters (in/out octet rates), Figure 2(b);
//  * saturating — utilization vs throughput, the bent curve of Fig 2(d);
//  * queueing   — response time vs load (M/M/1-style blow-up), strongly
//                 non-linear, Figure 2(c)-like scatter across machines;
//  * regime     — piecewise behaviour (e.g. cache warm/cold, failover
//                 paths) producing the "arbitrary shapes" of Fig 2(d).
//
// Each machine metric owns a ResponseFn plus a noise model; the shared
// workload drives them all, which is exactly what makes the pairwise
// correlations the paper models.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace pmcorr {

/// Maps normalized load u (0 = idle, ~1 = machine at capacity) to a clean
/// (noise-free) metric value in natural units.
class ResponseFn {
 public:
  virtual ~ResponseFn() = default;
  /// Clean metric value at normalized load `u` >= 0.
  virtual double Value(double u) const = 0;
  virtual std::string Describe() const = 0;
};

/// value = offset + gain * u.
class LinearResponse final : public ResponseFn {
 public:
  LinearResponse(double offset, double gain);
  double Value(double u) const override;
  std::string Describe() const override;

 private:
  double offset_;
  double gain_;
};

/// value = cap * u / (u + knee): concave saturation toward `cap`
/// (utilization-style curves; percent metrics use cap = 100).
class SaturatingResponse final : public ResponseFn {
 public:
  SaturatingResponse(double cap, double knee);
  double Value(double u) const override;
  std::string Describe() const override;

 private:
  double cap_;
  double knee_;
};

/// value = base / (1 - min(u, u_max)): M/M/1-style latency blow-up.
class QueueingResponse final : public ResponseFn {
 public:
  QueueingResponse(double base, double u_max = 0.93);
  double Value(double u) const override;
  std::string Describe() const override;

 private:
  double base_;
  double u_max_;
};

/// Two linear regimes split at `threshold`, continuous at the split only
/// if the parameters happen to line up — discontinuity is the point: it
/// yields the multi-cluster "arbitrary shape" scatter of Figure 2(d).
class RegimeResponse final : public ResponseFn {
 public:
  RegimeResponse(double threshold, double low_offset, double low_gain,
                 double high_offset, double high_gain);
  double Value(double u) const override;
  std::string Describe() const override;

 private:
  double threshold_;
  double low_offset_, low_gain_;
  double high_offset_, high_gain_;
};

/// Multiplicative log-normal + additive Gaussian measurement noise.
struct NoiseConfig {
  double relative_sigma = 0.03;  // log-normal sigma on the clean value
  double additive_sigma = 0.0;   // absolute Gaussian term
};

/// Applies the noise model; never returns below `floor`.
double ApplyNoise(double clean, const NoiseConfig& noise, Rng& rng,
                  double floor = 0.0);

/// The generation recipe for one metric on one machine.
struct MetricRecipe {
  MetricKind kind = MetricKind::kCpuUtilization;
  std::shared_ptr<const ResponseFn> response;
  NoiseConfig noise;
  /// Values are clamped to [floor, ceil] after noise (percent metrics cap
  /// at 100); ceil <= 0 disables the upper clamp.
  double floor = 0.0;
  double ceil = -1.0;
  /// Mixing weight of machine-local load wiggle vs the global workload
  /// (0 = perfectly global, 1 = fully machine-local).
  double local_mix = 0.2;
};

/// Builds the default recipe for `kind` on a machine with the given
/// capacity scale; `rng` draws the per-machine parameter variation
/// (gains, knees, regime thresholds) so machines differ but stay stable
/// for a fixed seed.
MetricRecipe MakeRecipe(MetricKind kind, double capacity_scale, Rng& rng);

}  // namespace pmcorr
