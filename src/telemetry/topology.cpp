#include "telemetry/topology.h"

#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace pmcorr {

std::string MachineRoleName(MachineRole role) {
  switch (role) {
    case MachineRole::kWebServer: return "web";
    case MachineRole::kAppServer: return "app";
    case MachineRole::kDatabase:  return "db";
    case MachineRole::kSwitch:    return "switch";
  }
  return "unknown";
}

std::vector<MetricKind> MetricsForRole(MachineRole role) {
  switch (role) {
    case MachineRole::kWebServer:
      return {MetricKind::kIfInOctetsRate, MetricKind::kIfOutOctetsRate,
              MetricKind::kCpuUtilization};
    case MachineRole::kAppServer:
      return {MetricKind::kCpuUtilization, MetricKind::kResponseTimeMs};
    case MachineRole::kDatabase:
      return {MetricKind::kDiskIoThroughput, MetricKind::kMemoryUtilization,
              MetricKind::kCpuUtilization};
    case MachineRole::kSwitch:
      return {MetricKind::kPortInOctetsRate, MetricKind::kPortOutOctetsRate,
              MetricKind::kCurrentUtilizationPort,
              MetricKind::kCurrentUtilizationIf};
  }
  return {};
}

std::size_t Topology::MeasurementCount() const {
  std::size_t n = 0;
  for (const auto& m : machines) n += MetricsForRole(m.role).size();
  return n;
}

Topology MakeTopology(const std::string& group_name, std::uint64_t seed,
                      const TopologyConfig& config) {
  Rng rng(CombineSeed(seed, 0x70500106));
  Topology topo;
  topo.group_name = group_name;
  topo.machines.reserve(config.machine_count);

  const double total = config.web_fraction + config.app_fraction +
                       config.db_fraction + config.switch_fraction;
  const double web_cut = config.web_fraction / total;
  const double app_cut = web_cut + config.app_fraction / total;
  const double db_cut = app_cut + config.db_fraction / total;

  for (std::size_t i = 0; i < config.machine_count; ++i) {
    MachineSpec spec;
    spec.id = MachineId(static_cast<std::int32_t>(i));
    // Deterministic striping keeps the role mix exact for any count.
    const double pos = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(config.machine_count);
    if (pos < web_cut) {
      spec.role = MachineRole::kWebServer;
    } else if (pos < app_cut) {
      spec.role = MachineRole::kAppServer;
    } else if (pos < db_cut) {
      spec.role = MachineRole::kDatabase;
    } else {
      spec.role = MachineRole::kSwitch;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s-%s-%02zu", group_name.c_str(),
                  MachineRoleName(spec.role).c_str(), i);
    spec.hostname = buf;
    spec.capacity_scale = rng.LogNormal(0.0, config.heterogeneity);
    spec.traffic_share = rng.LogNormal(0.0, config.heterogeneity);
    topo.machines.push_back(std::move(spec));
  }
  return topo;
}

}  // namespace pmcorr
