// Descriptive statistics used across the library: running moments,
// quantiles, correlation coefficients and fixed-width histograms. These
// back the grid partitioner (histograms), the telemetry selection criteria
// (variance / linear-relationship scan) and the experiment reports.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace pmcorr {

/// Single-pass accumulator for count / mean / variance / min / max
/// (Welford's algorithm; numerically stable).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  std::size_t Count() const { return count_; }
  double Mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero for fewer than 2 samples.
  double Variance() const;
  /// Sample variance (divides by n-1). Zero for fewer than 2 samples.
  double SampleVariance() const;
  double StdDev() const;
  double Min() const;
  double Max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `xs`; 0 for an empty span.
double Mean(std::span<const double> xs);

/// Population variance of `xs`; 0 for fewer than 2 samples.
double Variance(std::span<const double> xs);

double StdDev(std::span<const double> xs);

/// The q-quantile (0 <= q <= 1) by linear interpolation between order
/// statistics. Returns nullopt for an empty span.
std::optional<double> Quantile(std::span<const double> xs, double q);

/// Pearson linear correlation coefficient. Returns nullopt when either
/// series is constant or the spans differ in length / are empty.
std::optional<double> PearsonCorrelation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Spearman rank correlation (Pearson over fractional ranks). Captures
/// monotone non-linear association. Same failure conditions as Pearson.
std::optional<double> SpearmanCorrelation(std::span<const double> xs,
                                          std::span<const double> ys);

/// Least-squares fit y = slope*x + intercept plus the coefficient of
/// determination R^2. Returns nullopt when x is constant or sizes differ.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
std::optional<LinearFit> FitLinear(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fixed-width histogram over [lo, hi) with `bins` equal-sized bins;
/// values outside the range are clamped into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  void AddAll(std::span<const double> xs);

  std::size_t BinCount() const { return counts_.size(); }
  std::size_t CountAt(std::size_t bin) const { return counts_.at(bin); }
  const std::vector<std::size_t>& Counts() const { return counts_; }
  std::size_t TotalCount() const { return total_; }
  double Lo() const { return lo_; }
  double Hi() const { return hi_; }
  /// Width of one bin.
  double BinWidth() const;
  /// Lower edge of `bin`.
  double BinLower(std::size_t bin) const;
  /// Index of the bin containing `x` (clamped).
  std::size_t BinOf(double x) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::vector<double> quotients_;    // AddAll pass-one scratch
  std::vector<std::size_t> banks_;   // AddAll banked-counter scratch
};

}  // namespace pmcorr
