#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace pmcorr {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t CombineSeed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL + stream);
  SplitMix64(s);
  return SplitMix64(s);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  PMCORR_DASSERT(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full range
  // Lemire-style rejection-free bounded draw with negligible bias for the
  // ranges used here; exactness is not required for trace synthesis.
  return lo + static_cast<std::int64_t>(Next() % range);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  PMCORR_DASSERT(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  PMCORR_DASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  PMCORR_DASSERT(total > 0.0);
  double u = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace pmcorr
