#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pmcorr {
namespace {

// Lock-free so a failing check never blocks on a mutex the crashing
// thread might already hold.
std::atomic<CheckFailureHandler> g_handler{nullptr};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  return g_handler.exchange(handler);
}

void ThrowingCheckFailureHandler(const char* file, int line, const char* expr,
                                 const std::string& message) {
  std::string what = std::string(file) + ":" + std::to_string(line) +
                     ": check failed: " + expr;
  if (!message.empty()) what += " — " + message;
  throw CheckFailure(what);
}

namespace check_detail {

void Fail(const char* file, int line, const char* expr,
          const Format& message) {
  const std::string text = message.str();
  if (CheckFailureHandler handler = g_handler.load()) {
    handler(file, line, expr, text);
  }
  std::fprintf(stderr, "%s:%d: pmcorr check failed: %s%s%s\n", file, line,
               expr, text.empty() ? "" : " — ", text.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_detail
}  // namespace pmcorr
