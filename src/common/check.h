// Contract-checking macros for the model's structural invariants.
//
// Three tiers, by cost and build:
//
//  * PMCORR_ASSERT(cond, msg...)  — always on, every build type. For
//    cheap API-boundary contracts whose violation means memory-unsafe
//    or meaningless results (index bounds, shape agreement).
//  * PMCORR_DASSERT(cond, msg...) — on in debug (!NDEBUG) and audit
//    builds, compiled out of Release. The replacement for naked
//    assert() in src/ (tools/lint.sh enforces the ban): same cost
//    model, but formatted messages and a testable failure path.
//  * PMCORR_AUDIT(cond, msg...)   — on only when the PMCORR_AUDIT
//    CMake option defines PMCORR_AUDIT_ENABLED. For the expensive
//    whole-structure sweeps (CheckInvariants and its call sites);
//    compiles to ((void)0) otherwise so Release pays zero cost —
//    the condition is not evaluated.
//
// Failure handling is routed through a process-wide handler: the
// default prints the formatted message to stderr and aborts (a corrupt
// model in production must not keep scoring), while tests install a
// throwing handler (ScopedCheckThrow) so each audit's firing is itself
// testable. The extra msg arguments are streamed (operator<<) into the
// failure message and are only evaluated on the failing path.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pmcorr {

/// Thrown by the test-mode failure handler (see ScopedCheckThrow).
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

using CheckFailureHandler = void (*)(const char* file, int line,
                                     const char* expr,
                                     const std::string& message);

/// Installs `handler` for all subsequent check failures and returns the
/// previous handler. Pass nullptr to restore the default
/// (print-and-abort). Handlers may throw; if one returns normally the
/// process still aborts (a failed contract cannot be ignored).
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// A CheckFailureHandler that throws CheckFailure with the formatted
/// message — what tests install to prove an audit fires.
[[noreturn]] void ThrowingCheckFailureHandler(const char* file, int line,
                                              const char* expr,
                                              const std::string& message);

/// RAII: installs ThrowingCheckFailureHandler for the enclosing scope.
class ScopedCheckThrow {
 public:
  ScopedCheckThrow() : previous_(SetCheckFailureHandler(
                           &ThrowingCheckFailureHandler)) {}
  ~ScopedCheckThrow() { SetCheckFailureHandler(previous_); }
  ScopedCheckThrow(const ScopedCheckThrow&) = delete;
  ScopedCheckThrow& operator=(const ScopedCheckThrow&) = delete;

 private:
  CheckFailureHandler previous_;
};

namespace check_detail {

/// Lazily-built failure message; lives only on the failing path.
class Format {
 public:
  template <typename T>
  Format& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

/// Dispatches to the installed handler; aborts if the handler returns.
[[noreturn]] void Fail(const char* file, int line, const char* expr,
                       const Format& message);

}  // namespace check_detail
}  // namespace pmcorr

// Always-on contract check. Extra arguments are streamed into the
// failure message: PMCORR_ASSERT(i < n, "i=" << i << " n=" << n).
#define PMCORR_ASSERT(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      ::pmcorr::check_detail::Fail(                                      \
          __FILE__, __LINE__, #cond,                                     \
          ::pmcorr::check_detail::Format() __VA_OPT__(<< __VA_ARGS__));  \
    }                                                                    \
  } while (false)

// Debug-and-audit check; compiled out (condition unevaluated) in plain
// Release builds, matching the cost model of the assert() calls it
// replaces.
// PMCORR_DASSERT_ENABLED lets code guard whole validation loops, not
// just single conditions (#if PMCORR_DASSERT_ENABLED ... #endif).
#if !defined(NDEBUG) || defined(PMCORR_AUDIT_ENABLED)
#define PMCORR_DASSERT_ENABLED 1
#define PMCORR_DASSERT(cond, ...) PMCORR_ASSERT(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define PMCORR_DASSERT_ENABLED 0
#define PMCORR_DASSERT(cond, ...) ((void)0)
#endif

// Audit-build-only check for the expensive invariant sweeps; zero cost
// unless configured with -DPMCORR_AUDIT=ON.
#if defined(PMCORR_AUDIT_ENABLED)
#define PMCORR_AUDIT(cond, ...) PMCORR_ASSERT(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define PMCORR_AUDIT(cond, ...) ((void)0)
#endif

// Brackets statements that should exist only in audit builds (e.g. the
// CheckInvariants() calls at Learn/Step/deserialize boundaries).
#if defined(PMCORR_AUDIT_ENABLED)
#define PMCORR_AUDIT_ONLY(...) __VA_ARGS__
#else
#define PMCORR_AUDIT_ONLY(...)
#endif
