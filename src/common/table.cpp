#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace pmcorr {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

TextTable::RowBuilder& TextTable::RowBuilder::Cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Num(double value, int digits) {
  cells_.push_back(FormatDouble(value, digits));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Int(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::Percent(double fraction,
                                                      int digits) {
  cells_.push_back(FormatPercent(fraction, digits));
  return *this;
}

void TextTable::RowBuilder::Done() { table_->AddRow(std::move(cells_)); }

std::string TextTable::ToString() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return "";

  std::vector<std::size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < columns) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (columns - 1);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

void PrintSection(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace pmcorr
