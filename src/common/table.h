// ASCII table printer used by every benchmark binary to render paper-style
// rows (figure series, matrices, sweeps) on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pmcorr {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed decimals. Rendering pads every column to its widest cell.
class TextTable {
 public:
  TextTable() = default;

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (may be ragged; short rows render empty cells).
  void AddRow(std::vector<std::string> row);

  /// Convenience builder for a row mixing labels and numbers.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable* table) : table_(table) {}
    RowBuilder& Cell(std::string text);
    RowBuilder& Num(double value, int digits = 4);
    RowBuilder& Int(long long value);
    RowBuilder& Percent(double fraction, int digits = 2);
    /// Commits the row to the table.
    void Done();

   private:
    TextTable* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  std::size_t RowCount() const { return rows_.size(); }

  /// Renders with a separator line under the header.
  std::string ToString() const;

  /// Renders to the stream.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled section banner ("== title ==") around benchmark output.
void PrintSection(std::ostream& os, const std::string& title);

}  // namespace pmcorr
