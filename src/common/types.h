// Core value types shared across pmcorr modules.
//
// Measurements, machines and metric kinds get small strong-ish types so the
// rest of the code never passes bare ints around with ambiguous meaning.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace pmcorr {

/// Index of a measurement within a monitored system (0-based, dense).
/// A measurement is one metric on one machine, e.g. "CPU utilization on
/// server 10.0.0.7" — the unit the paper's pairwise models are built over.
struct MeasurementId {
  std::int32_t value = -1;

  constexpr MeasurementId() = default;
  constexpr explicit MeasurementId(std::int32_t v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }
  friend constexpr auto operator<=>(MeasurementId, MeasurementId) = default;
};

/// Index of a machine (server) within a group/company.
struct MachineId {
  std::int32_t value = -1;

  constexpr MachineId() = default;
  constexpr explicit MachineId(std::int32_t v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }
  friend constexpr auto operator<=>(MachineId, MachineId) = default;
};

/// An unordered pair of distinct measurements (a < b), identifying one of
/// the l(l-1)/2 pairwise correlation models.
struct PairId {
  MeasurementId a;
  MeasurementId b;

  constexpr PairId() = default;
  constexpr PairId(MeasurementId x, MeasurementId y)
      : a(x.value <= y.value ? x : y), b(x.value <= y.value ? y : x) {}

  constexpr bool valid() const {
    return a.valid() && b.valid() && a.value != b.value;
  }
  friend constexpr auto operator<=>(const PairId&, const PairId&) = default;
};

/// System metric kinds mirroring the paper's examples (Figures 1–2).
enum class MetricKind : std::uint8_t {
  kCpuUtilization,        // percent busy
  kMemoryUtilization,     // percent used
  kFreeMemory,            // bytes free
  kDiskIoThroughput,      // ops/s
  kIfInOctetsRate,        // bytes/s in on an interface
  kIfOutOctetsRate,       // bytes/s out on an interface
  kPortInOctetsRate,      // bytes/s in on a switch port
  kPortOutOctetsRate,     // bytes/s out on a switch port
  kCurrentUtilizationIf,  // interface utilization percent
  kCurrentUtilizationPort,// switch port utilization percent
  kResponseTimeMs,        // request latency
  kRequestRate,           // requests/s observed at the frontend
};

/// Human-readable metric name matching the paper's naming convention,
/// e.g. "IfInOctetsRate_IF" or "CurrentUtilization_PORT".
std::string MetricKindName(MetricKind kind);

}  // namespace pmcorr

template <>
struct std::hash<pmcorr::MeasurementId> {
  std::size_t operator()(pmcorr::MeasurementId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

template <>
struct std::hash<pmcorr::MachineId> {
  std::size_t operator()(pmcorr::MachineId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

template <>
struct std::hash<pmcorr::PairId> {
  std::size_t operator()(const pmcorr::PairId& p) const noexcept {
    const auto h = static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(p.a.value))
                       << 32 |
                   static_cast<std::uint32_t>(p.b.value);
    return std::hash<std::uint64_t>{}(h);
  }
};
