#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace pmcorr {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc{} && result.ptr == end;
}

bool ParseInt64(std::string_view text, long long* out) {
  text = Trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc{} && result.ptr == end;
}

}  // namespace pmcorr
