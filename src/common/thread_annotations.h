// Portable Clang Thread Safety Analysis annotations.
//
// Every locking discipline in the engine — which mutex guards which
// member, which private methods assume the lock is already held, which
// public entry points must NOT be called with it held — is written down
// with these macros and checked at compile time by clang's
// -Wthread-safety analysis (the CI `thread-safety` job builds the whole
// tree with it promoted to an error; tests/compile_fail/ proves each
// annotation class actually rejects a seeded violation). Under GCC and
// other compilers the macros expand to nothing, so the annotations cost
// no portability and never perturb codegen.
//
// The macro set mirrors the capability vocabulary from the clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   PMCORR_CAPABILITY("mutex")  on a lockable class (common/mutex.h)
//   PMCORR_SCOPED_CAPABILITY    on an RAII lock holder
//   PMCORR_GUARDED_BY(mu)       on data members: reads need mu held,
//                               writes need it held exclusively
//   PMCORR_REQUIRES(mu)         caller must hold mu across the call
//   PMCORR_ACQUIRE(mu) / PMCORR_RELEASE(mu)
//                               the function takes / returns ownership
//   PMCORR_EXCLUDES(mu)         caller must NOT hold mu (the function
//                               acquires it itself; catches
//                               self-deadlock at compile time)
//   PMCORR_ACQUIRED_BEFORE / AFTER
//                               the written-down lock hierarchy; an
//                               out-of-order acquisition is a build
//                               error, not a deadlock in production
//
// Use the annotated types in common/mutex.h rather than std::mutex —
// the raw std types carry no capability attributes, so the analysis is
// blind to them (tools/static_checks/ bans them outside the wrapper).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PMCORR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PMCORR_THREAD_ANNOTATION
#define PMCORR_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

#define PMCORR_CAPABILITY(x) PMCORR_THREAD_ANNOTATION(capability(x))

#define PMCORR_SCOPED_CAPABILITY PMCORR_THREAD_ANNOTATION(scoped_lockable)

#define PMCORR_GUARDED_BY(x) PMCORR_THREAD_ANNOTATION(guarded_by(x))

/// On a pointer member: the pointed-to data (not the pointer itself) is
/// guarded by x.
#define PMCORR_PT_GUARDED_BY(x) PMCORR_THREAD_ANNOTATION(pt_guarded_by(x))

#define PMCORR_REQUIRES(...) \
  PMCORR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define PMCORR_REQUIRES_SHARED(...) \
  PMCORR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define PMCORR_ACQUIRE(...) \
  PMCORR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define PMCORR_ACQUIRE_SHARED(...) \
  PMCORR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define PMCORR_RELEASE(...) \
  PMCORR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define PMCORR_RELEASE_SHARED(...) \
  PMCORR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define PMCORR_TRY_ACQUIRE(...) \
  PMCORR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define PMCORR_EXCLUDES(...) \
  PMCORR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define PMCORR_ACQUIRED_BEFORE(...) \
  PMCORR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define PMCORR_ACQUIRED_AFTER(...) \
  PMCORR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define PMCORR_ASSERT_CAPABILITY(x) \
  PMCORR_THREAD_ANNOTATION(assert_capability(x))

#define PMCORR_RETURN_CAPABILITY(x) \
  PMCORR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for wrapper internals the analysis cannot model (e.g.
/// CondVar handing an already-held mutex to std::condition_variable).
/// Every use must carry a comment saying why the analysis is wrong.
#define PMCORR_NO_THREAD_SAFETY_ANALYSIS \
  PMCORR_THREAD_ANNOTATION(no_thread_safety_analysis)
