#include "common/sparkline.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pmcorr {
namespace {

// U+2581 .. U+2588, lowest to tallest.
const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

}  // namespace

std::string Sparkline(std::span<const std::optional<double>> values,
                      const SparklineOptions& options) {
  const std::size_t width = std::max<std::size_t>(1, options.width);
  if (values.empty()) return std::string(width, options.gap);

  // Bucket-average the engaged values.
  std::vector<std::optional<double>> buckets(std::min(width, values.size()));
  const double per_bucket =
      static_cast<double>(values.size()) / static_cast<double>(buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const auto from = static_cast<std::size_t>(
        std::floor(static_cast<double>(b) * per_bucket));
    auto to = static_cast<std::size_t>(
        std::floor(static_cast<double>(b + 1) * per_bucket));
    to = std::clamp(to, from + 1, values.size());
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (values[i]) {
        sum += *values[i];
        ++n;
      }
    }
    if (n > 0) buckets[b] = sum / static_cast<double>(n);
  }

  double lo = options.lo;
  double hi = options.hi;
  if (lo >= hi) {
    lo = 1e300;
    hi = -1e300;
    for (const auto& b : buckets) {
      if (b) {
        lo = std::min(lo, *b);
        hi = std::max(hi, *b);
      }
    }
    if (lo > hi) {  // all gaps
      return std::string(buckets.size(), options.gap);
    }
    if (lo == hi) hi = lo + 1.0;  // flat series renders mid-height
  }

  std::string out;
  out.reserve(buckets.size() * 3);
  for (const auto& b : buckets) {
    if (!b) {
      out += options.gap;
      continue;
    }
    const double norm = std::clamp((*b - lo) / (hi - lo), 0.0, 1.0);
    const auto level =
        std::min<std::size_t>(7, static_cast<std::size_t>(norm * 8.0));
    out += kBlocks[level];
  }
  return out;
}

std::string Sparkline(std::span<const double> values,
                      const SparklineOptions& options) {
  std::vector<std::optional<double>> wrapped(values.begin(), values.end());
  return Sparkline(std::span<const std::optional<double>>(wrapped), options);
}

}  // namespace pmcorr
