#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace pmcorr {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
/// Serializes sink writes so concurrent log lines never interleave.
Mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "[pmcorr %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace pmcorr
