// Small string helpers shared by the CSV layer and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pmcorr {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style double formatting with `digits` decimals.
std::string FormatDouble(double value, int digits);

/// Formats a fraction as a percentage string, e.g. 0.2198 -> "21.98%".
std::string FormatPercent(double fraction, int digits = 2);

/// Parses a double; returns false on any trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a 64-bit signed integer with the same strictness.
bool ParseInt64(std::string_view text, long long* out);

}  // namespace pmcorr
