// Annotated mutex / condition-variable wrappers.
//
// The engine's locking disciplines are compile-time contracts: every
// mutex in the codebase is a pmcorr::Mutex, every guarded member names
// it in a PMCORR_GUARDED_BY, and clang's -Wthread-safety analysis
// rejects any access that does not hold the right lock (see
// common/thread_annotations.h and docs/analysis.md "Concurrency
// contracts"). std::mutex itself carries no capability attributes, so
// using it directly blinds the analysis — tools/static_checks bans the
// raw std types everywhere outside this header.
//
// The wrappers are zero-cost veneers over the std primitives: Mutex is
// exactly a std::mutex, MutexLock a lock_guard, CondVar a
// condition_variable (TSan still sees the real thing). CondVar::Wait
// takes the annotated Mutex directly, so predicate loops read
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);   // REQUIRES(mu_) — checked
//
// and a Wait without the lock held is a build error, not a hang.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace pmcorr {

/// A std::mutex that the thread-safety analysis can see. Lock/Unlock
/// pair explicitly for the rare hand-over-hand paths (the thread pool's
/// worker loop); everything else should prefer MutexLock.
class PMCORR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PMCORR_ACQUIRE() { mu_.lock(); }
  void Unlock() PMCORR_RELEASE() { mu_.unlock(); }
  bool TryLock() PMCORR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (and, under clang, informs the analysis of) a lock that
  /// is provably held through some path the analysis cannot follow.
  void AssertHeld() const PMCORR_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII holder: acquires in the constructor, releases in the destructor.
/// The analysis tracks the scope, so guarded members are accessible for
/// exactly the lifetime of the lock object.
class PMCORR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PMCORR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PMCORR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Spurious wakeups are
/// possible as with the std type: always Wait inside a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning — the caller must hold `mu`, and still does afterwards.
  void Wait(Mutex& mu) PMCORR_REQUIRES(mu) {
    // Hand the already-held mutex to the std wait via an adopting
    // unique_lock, then release() so the borrowed ownership is returned
    // to the caller's scope rather than dropped here. Net lock state is
    // unchanged, which is exactly what REQUIRES promises.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pmcorr
