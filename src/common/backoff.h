// Deterministic retry/backoff policy and an injectable monotonic clock.
//
// Degraded-mode monitoring (engine/quarantine.h, engine/retrainer.h)
// needs two primitives that must behave identically in production, in
// the differential tests and under fault injection:
//
//  * BackoffPolicy — a pure function from "how many times has this
//    failed" to "how long to wait before the next attempt", with a cap
//    and a hard retry budget. No randomness, no wall clock: callers
//    count in whatever unit they schedule in (the pair quarantine
//    counts samples, so a restored checkpoint resumes the exact same
//    retry schedule).
//  * MonotonicClockFn — a swappable nanosecond clock for the code that
//    does need wall time (the retrainer's rebuild watchdog). Tests
//    install a fake so "a rebuild has been wedged for ten minutes" is a
//    deterministic statement, not a sleep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace pmcorr {

/// Exponential backoff with a cap and a retry budget. `DelayFor(k)` is
/// the wait before retry k (0-based): base * multiplier^k, saturated at
/// `cap`. All arithmetic is integral-safe: overflow saturates at cap.
struct BackoffPolicy {
  /// Delay before the first retry, in caller units (samples, ms, ...).
  std::size_t base = 16;
  /// Growth factor per failed retry; values < 1 are treated as 1.
  double multiplier = 2.0;
  /// Upper bound on any single delay.
  std::size_t cap = 1024;
  /// Total retries allowed before the caller should give up for good.
  std::size_t budget = 8;

  /// Delay before 0-based retry `retry`, saturated at `cap`.
  std::size_t DelayFor(std::size_t retry) const;

  /// True once `retries_done` attempts have been spent — the caller
  /// should stop scheduling retries (e.g. retire a quarantined pair).
  bool Exhausted(std::size_t retries_done) const {
    return retries_done >= budget;
  }
};

/// Nanoseconds on a monotonic clock. The default reads
/// std::chrono::steady_clock; tests substitute a controllable counter.
using MonotonicClockFn = std::function<std::int64_t()>;

/// The real steady_clock, in nanoseconds since an arbitrary epoch.
std::int64_t MonotonicNowNs();

}  // namespace pmcorr
