// Terminal sparklines: compact score-series plots for benches and
// examples (the closest a stdout harness gets to the paper's figures).
#pragma once

#include <optional>
#include <span>
#include <string>

namespace pmcorr {

/// Options for sparkline rendering.
struct SparklineOptions {
  /// Output width in characters; the series is bucketed to fit.
  std::size_t width = 72;
  /// Fixed value range; when lo >= hi the data range is used.
  double lo = 0.0;
  double hi = 0.0;
  /// Character used where a bucket has no engaged values.
  char gap = ' ';
};

/// Renders the series as one line of U+2581..U+2588 block characters,
/// bucket-averaging down to `options.width` columns. Disengaged samples
/// (nullopt) render as the gap character.
std::string Sparkline(std::span<const std::optional<double>> values,
                      const SparklineOptions& options = {});

/// Dense-series overload.
std::string Sparkline(std::span<const double> values,
                      const SparklineOptions& options = {});

}  // namespace pmcorr
