// Deterministic pseudo-random number generation.
//
// Every stochastic component in pmcorr (trace generator, fault injector,
// tests) draws from an explicitly seeded Rng so that experiments are
// reproducible bit-for-bit across runs and platforms. The generator is
// xoshiro256** seeded through splitmix64 — fast, high quality, and
// independent of the standard library's unspecified distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pmcorr {

/// xoshiro256** PRNG with explicit seeding and portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  /// UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via the polar (Marsaglia) method.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size()-1 on numerical edge cases; requires a
  /// non-empty vector with a positive total weight.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Creates an independent generator derived from this one's stream —
  /// used to give each machine/metric its own stable substream.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step — exposed for stable hashing of seeds from strings/ids.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Deterministically combines a base seed with a stream id (e.g. machine
/// index) into a new seed, so substreams are decorrelated.
std::uint64_t CombineSeed(std::uint64_t base, std::uint64_t stream);

}  // namespace pmcorr
