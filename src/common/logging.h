// Leveled logging for the engine and experiment harnesses.
//
// Deliberately tiny: a global level, a stream sink, and printf-style
// helpers. Benchmarks set the level to kWarn so their tables stay clean.
#pragma once

#include <sstream>
#include <string>

namespace pmcorr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits one log line (used by the PMCORR_LOG macro; callable directly).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pmcorr

#define PMCORR_LOG(level)                                       \
  if (static_cast<int>(::pmcorr::LogLevel::level) <             \
      static_cast<int>(::pmcorr::GetLogLevel())) {              \
  } else                                                        \
    ::pmcorr::internal::LogLine(::pmcorr::LogLevel::level)
