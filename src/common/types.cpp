#include "common/types.h"

namespace pmcorr {

std::string MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCpuUtilization:         return "CpuUtilization";
    case MetricKind::kMemoryUtilization:      return "MemoryUtilization";
    case MetricKind::kFreeMemory:             return "FreeMemory";
    case MetricKind::kDiskIoThroughput:       return "DiskIoThroughput";
    case MetricKind::kIfInOctetsRate:         return "IfInOctetsRate_IF";
    case MetricKind::kIfOutOctetsRate:        return "IfOutOctetsRate_IF";
    case MetricKind::kPortInOctetsRate:       return "IfInOctetsRate_PORT";
    case MetricKind::kPortOutOctetsRate:      return "IfOutOctetsRate_PORT";
    case MetricKind::kCurrentUtilizationIf:   return "CurrentUtilization_IF";
    case MetricKind::kCurrentUtilizationPort: return "CurrentUtilization_PORT";
    case MetricKind::kResponseTimeMs:         return "ResponseTime_MS";
    case MetricKind::kRequestRate:            return "RequestRate";
  }
  return "UnknownMetric";
}

}  // namespace pmcorr
