#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace pmcorr {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::Max() const {
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  return stats.Variance();
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

std::optional<double> Quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::nullopt;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::optional<double> PearsonCorrelation(std::span<const double> xs,
                                         std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Fractional ranks (average rank for ties), 1-based.
std::vector<double> FractionalRanks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

std::optional<double> SpearmanCorrelation(std::span<const double> xs,
                                          std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const std::vector<double> rx = FractionalRanks(xs);
  const std::vector<double> ry = FractionalRanks(ys);
  return PearsonCorrelation(rx, ry);
}

std::optional<LinearFit> FitLinear(std::span<const double> xs,
                                   std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return std::nullopt;
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

namespace {

// AddAll's pass one: q[i] = (xs[i] - lo) / width for every sample. IEEE
// subtraction and division are correctly rounded per element, so the
// quotients are bitwise identical at any vector width; the wider clones
// only raise divide throughput (the pass is divpd-bound). The "avx" /
// "avx512f" targets do not enable FMA, so nothing can be contracted.
// Selected once per process by CPU probe.
__attribute__((always_inline)) inline void QuotientsBody(const double* xs,
                                                         std::size_t n,
                                                         double lo,
                                                         double width,
                                                         double* q) {
  for (std::size_t i = 0; i < n; ++i) q[i] = (xs[i] - lo) / width;
}

using QuotientsFn = void (*)(const double*, std::size_t, double, double,
                             double*);

void QuotientsDefault(const double* xs, std::size_t n, double lo, double width,
                      double* q) {
  QuotientsBody(xs, n, lo, width, q);
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("avx"))) void QuotientsAvx(const double* xs,
                                                 std::size_t n, double lo,
                                                 double width, double* q) {
  QuotientsBody(xs, n, lo, width, q);
}

__attribute__((target("avx512f"))) void QuotientsAvx512(const double* xs,
                                                        std::size_t n,
                                                        double lo, double width,
                                                        double* q) {
  QuotientsBody(xs, n, lo, width, q);
}

QuotientsFn SelectQuotientsFn() {
  if (__builtin_cpu_supports("avx512f")) return QuotientsAvx512;
  if (__builtin_cpu_supports("avx")) return QuotientsAvx;
  return QuotientsDefault;
}
#else
QuotientsFn SelectQuotientsFn() { return QuotientsDefault; }
#endif

const QuotientsFn kQuotientsFn = SelectQuotientsFn();

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PMCORR_DASSERT(bins > 0);
  PMCORR_DASSERT(hi > lo);
}

void Histogram::Add(double x) {
  ++counts_[BinOf(x)];
  ++total_;
}

void Histogram::AddAll(std::span<const double> xs) {
  // Bulk insert as a blocked two-phase loop. Phase one evaluates BinOf's
  // (x - lo) / width quotient for one block — a straight-line loop the
  // compiler turns into packed divides, where BinOf's branches and the
  // counter scatter would keep it scalar. Phase two applies BinOf's edge
  // logic to the precomputed quotient: x <= lo ⇔ quotient <= 0
  // (width > 0, and x - lo compares to zero exactly as x compares to
  // lo), the upper clamps are unchanged, and the quotient is the
  // identical double BinOf divides out — so every sample lands in the
  // identical bin. Fusing the phases per block (instead of one
  // full-length quotient pass then one full-length scatter pass) keeps
  // the quotient buffer L1-resident and makes one trip over the
  // samples, not two; per-element math is unchanged, so the counts are
  // bit-for-bit the same for any block size.
  constexpr std::size_t kBlock = 2048;
  const double width = BinWidth();
  const double lo = lo_;
  const std::size_t last = counts_.size() - 1;
  quotients_.resize(std::min(xs.size(), kBlock));
  double* q = quotients_.data();
  // Four independent count banks, merged at the end. Smooth series drop
  // consecutive samples into the same bin, so a single counter array
  // serializes on store-to-load forwarding of one hot line; rotating
  // banks keeps four increment chains in flight. Integer tallies are
  // order-independent — the merged banks are exactly the single-array
  // counts.
  const std::size_t bins = counts_.size();
  banks_.assign(4 * bins, 0);
  std::size_t* b0 = banks_.data();
  std::size_t* b1 = b0 + bins;
  std::size_t* b2 = b1 + bins;
  std::size_t* b3 = b2 + bins;
  // Branchless form of BinOf's edge logic, exact for finite inputs:
  // x <= lo ⇔ q <= 0 clamps to 0; x >= hi forces q >= bins - O(ulp),
  // far above last, so the upper clamp yields `last` exactly as the
  // explicit compare; in between both forms truncate the identical
  // quotient and apply the identical min. (min/max compile to
  // minsd/maxsd — no data-dependent branches in the scatter loop.)
  const double dlast = static_cast<double>(last);
  const auto bin_of = [&](std::size_t i) {
    return static_cast<std::size_t>(std::min(std::max(q[i], 0.0), dlast));
  };
  for (std::size_t base = 0; base < xs.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, xs.size() - base);
    kQuotientsFn(xs.data() + base, n, lo, width, q);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      ++b0[bin_of(i)];
      ++b1[bin_of(i + 1)];
      ++b2[bin_of(i + 2)];
      ++b3[bin_of(i + 3)];
    }
    for (; i < n; ++i) ++b0[bin_of(i)];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    counts_[b] += b0[b] + b1[b] + b2[b] + b3[b];
  }
  total_ += xs.size();
}

double Histogram::BinWidth() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::BinLower(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * BinWidth();
}

std::size_t Histogram::BinOf(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto bin = static_cast<std::size_t>((x - lo_) / BinWidth());
  return std::min(bin, counts_.size() - 1);
}

}  // namespace pmcorr
