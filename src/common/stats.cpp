#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace pmcorr {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::Max() const {
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  return stats.Variance();
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

std::optional<double> Quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::nullopt;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::optional<double> PearsonCorrelation(std::span<const double> xs,
                                         std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Fractional ranks (average rank for ties), 1-based.
std::vector<double> FractionalRanks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

std::optional<double> SpearmanCorrelation(std::span<const double> xs,
                                          std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const std::vector<double> rx = FractionalRanks(xs);
  const std::vector<double> ry = FractionalRanks(ys);
  return PearsonCorrelation(rx, ry);
}

std::optional<LinearFit> FitLinear(std::span<const double> xs,
                                   std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return std::nullopt;
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::Add(double x) {
  ++counts_[BinOf(x)];
  ++total_;
}

void Histogram::AddAll(std::span<const double> xs) {
  for (double x : xs) Add(x);
}

double Histogram::BinWidth() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::BinLower(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * BinWidth();
}

std::size_t Histogram::BinOf(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto bin = static_cast<std::size_t>((x - lo_) / BinWidth());
  return std::min(bin, counts_.size() - 1);
}

}  // namespace pmcorr
