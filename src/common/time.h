// Minimal civil-time utilities for the trace simulator and experiment
// harness. The paper's traces cover May 29 – June 27, 2008 with a sample
// every 6 minutes; we mirror those dates exactly, so we need a tiny
// self-contained calendar (no locale, no timezone — trace-local time).
#pragma once

#include <cstdint>
#include <string>

namespace pmcorr {

/// Seconds since the Unix epoch, trace-local (no timezone applied).
using TimePoint = std::int64_t;
/// A span in seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;
/// The paper's sampling period: one sample every 6 minutes.
inline constexpr Duration kPaperSamplePeriod = 6 * kMinute;
/// Samples per day at the paper's 6-minute rate (240).
inline constexpr int kSamplesPerDay = static_cast<int>(kDay / kPaperSamplePeriod);

/// A calendar date. Only the Gregorian rules are implemented; that is all
/// the experiment harness needs.
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend constexpr auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// True if `year` is a Gregorian leap year.
bool IsLeapYear(int year);

/// Number of days in the given month of the given year.
int DaysInMonth(int year, int month);

/// Converts a civil date (at midnight) to a TimePoint.
TimePoint ToTimePoint(const CivilDate& date);

/// Converts a TimePoint back to the civil date containing it.
CivilDate ToCivilDate(TimePoint tp);

/// Day of week, 0 = Sunday … 6 = Saturday.
int DayOfWeek(TimePoint tp);

/// True if `tp` falls on Saturday or Sunday (used by the workload model:
/// the paper observes higher fitness scores on weekends).
bool IsWeekend(TimePoint tp);

/// Seconds elapsed since local midnight of the day containing `tp`.
Duration SecondsIntoDay(TimePoint tp);

/// Formats as "YYYY-MM-DD".
std::string FormatDate(const CivilDate& date);

/// Formats as "YYYY-MM-DD HH:MM".
std::string FormatTimePoint(TimePoint tp);

/// Formats the paper's short style, e.g. "6.13" for June 13.
std::string FormatPaperDate(const CivilDate& date);

/// Key dates from the paper's evaluation (Section 6).
namespace paper_dates {
inline constexpr CivilDate kTraceStart{2008, 5, 29};   // May 29, 2008
inline constexpr CivilDate kTrainStart{2008, 5, 29};
inline constexpr CivilDate kTestStart{2008, 6, 13};    // June 13, 2008
inline constexpr CivilDate kTraceEnd{2008, 6, 27};     // June 27, 2008
}  // namespace paper_dates

/// Simple wall-clock stopwatch used by the updating-time experiments.
class Stopwatch {
 public:
  Stopwatch();
  /// Restarts the stopwatch.
  void Reset();
  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const;

 private:
  std::int64_t start_ns_;
};

}  // namespace pmcorr
