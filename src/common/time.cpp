#include "common/time.h"

#include <array>
#include <chrono>
#include <cstdio>

namespace pmcorr {
namespace {

constexpr std::array<int, 12> kMonthDays = {31, 28, 31, 30, 31, 30,
                                            31, 31, 30, 31, 30, 31};

// Days from 1970-01-01 to the start of `year`.
std::int64_t DaysToYear(int year) {
  std::int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeapYear(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeapYear(y) ? 366 : 365;
  }
  return days;
}

}  // namespace

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  if (month == 2 && IsLeapYear(year)) return 29;
  return kMonthDays[static_cast<std::size_t>(month - 1)];
}

TimePoint ToTimePoint(const CivilDate& date) {
  std::int64_t days = DaysToYear(date.year);
  for (int m = 1; m < date.month; ++m) days += DaysInMonth(date.year, m);
  days += date.day - 1;
  return days * kDay;
}

CivilDate ToCivilDate(TimePoint tp) {
  std::int64_t days = tp / kDay;
  if (tp < 0 && tp % kDay != 0) --days;  // floor toward earlier days
  CivilDate date;
  date.year = 1970;
  while (true) {
    const std::int64_t in_year = IsLeapYear(date.year) ? 366 : 365;
    if (days >= in_year) {
      days -= in_year;
      ++date.year;
    } else if (days < 0) {
      --date.year;
      days += IsLeapYear(date.year) ? 366 : 365;
    } else {
      break;
    }
  }
  date.month = 1;
  while (days >= DaysInMonth(date.year, date.month)) {
    days -= DaysInMonth(date.year, date.month);
    ++date.month;
  }
  date.day = static_cast<int>(days) + 1;
  return date;
}

int DayOfWeek(TimePoint tp) {
  std::int64_t days = tp / kDay;
  if (tp < 0 && tp % kDay != 0) --days;
  // 1970-01-01 was a Thursday (= 4).
  std::int64_t dow = (days + 4) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

bool IsWeekend(TimePoint tp) {
  const int dow = DayOfWeek(tp);
  return dow == 0 || dow == 6;
}

Duration SecondsIntoDay(TimePoint tp) {
  Duration s = tp % kDay;
  if (s < 0) s += kDay;
  return s;
}

std::string FormatDate(const CivilDate& date) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", date.year, date.month,
                date.day);
  return buf;
}

std::string FormatTimePoint(TimePoint tp) {
  const CivilDate date = ToCivilDate(tp);
  const Duration s = SecondsIntoDay(tp);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d", date.year,
                date.month, date.day, static_cast<int>(s / kHour),
                static_cast<int>((s % kHour) / kMinute));
  return buf;
}

std::string FormatPaperDate(const CivilDate& date) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d.%d", date.month, date.day);
  return buf;
}

Stopwatch::Stopwatch() { Reset(); }

void Stopwatch::Reset() {
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double Stopwatch::ElapsedSeconds() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - start_ns_) * 1e-9;
}

}  // namespace pmcorr
