#include "common/backoff.h"

#include <chrono>
#include <cmath>

namespace pmcorr {

std::size_t BackoffPolicy::DelayFor(std::size_t retry) const {
  const double factor = multiplier < 1.0 ? 1.0 : multiplier;
  // base * factor^retry in doubles, saturating: 2^63 samples is ~10^12
  // years of 6-minute cadence, so double precision loss above the cap
  // is unobservable.
  double delay = static_cast<double>(base);
  for (std::size_t i = 0; i < retry; ++i) {
    delay *= factor;
    if (delay >= static_cast<double>(cap)) return cap;
  }
  if (!(delay < static_cast<double>(cap))) return cap;
  const auto integral = static_cast<std::size_t>(delay);
  return integral < 1 ? 1 : integral;
}

std::int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace pmcorr
