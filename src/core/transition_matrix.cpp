#include "core/transition_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"

// Arithmetic-order contract (docs/kernels.md): every routine here must
// perform the same floating-point operations, on the same values, in the
// same order as the pre-stencil scalar code — the golden traces in
// tests/golden/ pin the results to 17 digits. The stencil table holds
// bitwise the doubles DecayKernel::LogWeight returns, row sweeps add them
// in ascending destination order, and the caches only memoize values the
// uncached scans would recompute identically.

namespace pmcorr {

TransitionMatrix TransitionMatrix::Prior(const Grid2D& grid,
                                         const DecayKernel& kernel) {
  TransitionMatrix m;
  m.cells_ = grid.CellCount();
  m.rows_ = grid.Rows();
  m.cols_ = grid.Cols();
  m.stencil_ = KernelStencil(m.rows_, m.cols_, kernel);
  m.prior_logw_.resize(m.cells_ * m.cells_);
  m.evidence_.assign(m.cells_ * m.cells_, 0.0);
  m.counts_.assign(m.cells_ * m.cells_, 0);
  m.cache_.assign(m.cells_, RowCache{});
  // Row i of the prior is the stencil centered at cell i: each grid row
  // of destinations is one contiguous stencil slice.
  double* dst = m.prior_logw_.data();
  for (std::size_t i = 0; i < m.cells_; ++i) {
    const int ci = static_cast<int>(i / m.cols_);
    const std::size_t cj = i % m.cols_;
    for (std::size_t r = 0; r < m.rows_; ++r) {
      const double* src = m.stencil_.RowSlice(static_cast<int>(r) - ci, cj);
      dst = std::copy(src, src + m.cols_, dst);
    }
  }
  return m;
}

const TransitionMatrix::RowCache& TransitionMatrix::RowStats(
    std::size_t from) const {
  RowCache& rc = cache_[from];
  if (!rc.stats_valid) {
    const double* pw = prior_logw_.data() + from * cells_;
    const double* ev = evidence_.data() + from * cells_;
    double max_logw = pw[0] + ev[0];
    for (std::size_t j = 1; j < cells_; ++j) {
      max_logw = std::max(max_logw, pw[j] + ev[j]);
    }
    double total = 0.0;
    for (std::size_t j = 0; j < cells_; ++j) {
      total += std::exp(pw[j] + ev[j] - max_logw);
    }
    rc.max_logw = max_logw;
    rc.sum_exp = total;
    rc.stats_valid = true;
  }
  return rc;
}

void TransitionMatrix::BuildSorted(std::size_t from) const {
  RowCache& rc = cache_[from];
  PMCORR_DASSERT(rc.stats_valid);
  const double* pw = prior_logw_.data() + from * cells_;
  const double* ev = evidence_.data() + from * cells_;
  rc.sorted.resize(cells_);
  for (std::size_t j = 0; j < cells_; ++j) {
    rc.sorted[j] = {pw[j] + ev[j], static_cast<std::uint32_t>(j)};
  }
  std::sort(rc.sorted.begin(), rc.sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  rc.sorted_valid = true;
}

std::size_t TransitionMatrix::RankInRow(std::size_t from, std::size_t to,
                                        double target) const {
  const RowCache& rc = cache_[from];
  if (rc.sorted_valid) {
    // Entries strictly above `target` precede the partition point; ties
    // break toward the lower cell index, exactly like the linear scan.
    const auto it = std::lower_bound(
        rc.sorted.begin(), rc.sorted.end(), target,
        [](const std::pair<double, std::uint32_t>& entry, double t) {
          return entry.first > t;
        });
    std::size_t rank =
        1 + static_cast<std::size_t>(it - rc.sorted.begin());
    for (auto eq = it; eq != rc.sorted.end() && eq->first == target; ++eq) {
      if (eq->second < to) ++rank;
    }
    return rank;
  }
  const double* pw = prior_logw_.data() + from * cells_;
  const double* ev = evidence_.data() + from * cells_;
  std::size_t rank = 1;
  for (std::size_t j = 0; j < cells_; ++j) {
    const double w = pw[j] + ev[j];
    if (w > target || (w == target && j < to)) ++rank;
  }
  return rank;
}

double TransitionMatrix::Probability(std::size_t from, std::size_t to) const {
  if (cells_ == 0) return 0.0;
  PMCORR_DASSERT(from < cells_ && to < cells_);
  const RowCache& rc = RowStats(from);
  return std::exp(PosteriorLogW(from, to) - rc.max_logw) / rc.sum_exp;
}

TransitionScore TransitionMatrix::ScoreTransition(std::size_t from,
                                                  std::size_t to) const {
  TransitionScore out;
  if (cells_ == 0) return out;
  PMCORR_DASSERT(from < cells_ && to < cells_);
  RowCache& rc = cache_[from];
  const double* pw = prior_logw_.data() + from * cells_;
  const double* ev = evidence_.data() + from * cells_;
  const double target = pw[to] + ev[to];
  if (!rc.stats_valid) {
    // Cold row (just written): one fused pass for max + rank, one for
    // the exponential sum — versus the three passes of the unfused
    // Probability + RankOf sequence.
    double max_logw = pw[0] + ev[0];
    std::size_t rank = 1;
    {
      const double w0 = pw[0] + ev[0];
      if (w0 > target || (w0 == target && 0 < to)) ++rank;
    }
    for (std::size_t j = 1; j < cells_; ++j) {
      const double w = pw[j] + ev[j];
      max_logw = std::max(max_logw, w);
      if (w > target || (w == target && j < to)) ++rank;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < cells_; ++j) {
      total += std::exp(pw[j] + ev[j] - max_logw);
    }
    rc.max_logw = max_logw;
    rc.sum_exp = total;
    rc.stats_valid = true;
    out.rank = rank;
  } else {
    // Warm row (rescored without a write in between — e.g. alarmed
    // transitions, frozen calibration replays, non-adaptive monitors):
    // probability is O(1) from the cached stats; rank goes through the
    // sorted cache, built on this second touch and O(log s) afterwards.
    if (!rc.sorted_valid) BuildSorted(from);
    out.rank = RankInRow(from, to, target);
  }
  out.probability = std::exp(target - rc.max_logw) / rc.sum_exp;
  return out;
}

std::vector<double> TransitionMatrix::RowDistribution(std::size_t from) const {
  if (cells_ == 0) return {};
  PMCORR_DASSERT(from < cells_);
  const RowCache& rc = RowStats(from);
  std::vector<double> row(cells_);
  const double* pw = prior_logw_.data() + from * cells_;
  const double* ev = evidence_.data() + from * cells_;
  for (std::size_t j = 0; j < cells_; ++j) {
    row[j] = std::exp(pw[j] + ev[j] - rc.max_logw);
  }
  for (double& p : row) p /= rc.sum_exp;
  return row;
}

void TransitionMatrix::ObserveTransition(std::size_t from,
                                         std::size_t observed,
                                         const Grid2D& grid,
                                         const DecayKernel& kernel,
                                         double weight, double forgetting) {
  PMCORR_DASSERT(from < cells_ && observed < cells_);
  PMCORR_DASSERT(grid.CellCount() == cells_);
  PMCORR_DASSERT(stencil_.Matches(grid.Rows(), grid.Cols()));
  (void)grid;
  (void)kernel;  // the stencil tabulated this kernel at Prior() time
  UpdateRowEvidence(from, observed, weight, forgetting);
  ++observed_;
  InvalidateRow(from);
}

void TransitionMatrix::ObserveTransitionStencil(std::size_t from,
                                                std::size_t observed,
                                                const Grid2D& grid,
                                                const DecayKernel& kernel,
                                                double weight,
                                                double forgetting) {
  PMCORR_DASSERT(from < cells_ && observed < cells_);
  PMCORR_DASSERT(grid.CellCount() == cells_);
  PMCORR_DASSERT(stencil_.Matches(grid.Rows(), grid.Cols()));
  (void)grid;
  (void)kernel;  // the stencil tabulated this kernel at Prior() time
  const int oi = static_cast<int>(observed / cols_);
  const std::size_t oj = observed % cols_;
  double* e = evidence_.data() + from * cells_;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* lw = stencil_.RowSlice(static_cast<int>(r) - oi, oj);
    for (std::size_t c = 0; c < cols_; ++c) {
      e[c] = e[c] * forgetting + weight * lw[c];
    }
    e += cols_;
  }
  ++counts_[from * cells_ + observed];
  ++observed_;
  InvalidateRow(from);
}

namespace {

// One bucket of the replay: applies every destination in `dests` to
// evidence row `e` in arrival order, with the same weight/forgetting
// specializations as UpdateRowEvidence (hoisted out of the transition
// loop — they are constant across a replay).
// The bucket loop consumes four transitions per sweep: applying four
// updates to element c as one parenthesized left-to-right chain performs
// exactly the roundings of four single-transition sweeps (the compiler
// may not reassociate FP without fast-math), while storing the evidence
// row once instead of four times and keeping four prior-row streams in
// flight — the sweep is memory-bound on the prior table, not on FP adds.
__attribute__((always_inline)) inline void ReplayRowBody(
    double* e, const double* prior, std::size_t cells,
    const std::uint32_t* dests, std::size_t n, std::uint32_t* row_counts,
    double weight, double forgetting) {
  std::size_t k = 0;
  if (forgetting == 1.0 && weight == 1.0) {
    for (; k + 4 <= n; k += 4) {
      const double* p0 = prior + dests[k] * cells;
      const double* p1 = prior + dests[k + 1] * cells;
      const double* p2 = prior + dests[k + 2] * cells;
      const double* p3 = prior + dests[k + 3] * cells;
      for (std::size_t c = 0; c < cells; ++c) {
        e[c] = (((e[c] + p0[c]) + p1[c]) + p2[c]) + p3[c];
      }
      ++row_counts[dests[k]];
      ++row_counts[dests[k + 1]];
      ++row_counts[dests[k + 2]];
      ++row_counts[dests[k + 3]];
    }
    for (; k < n; ++k) {
      const double* p = prior + dests[k] * cells;
      for (std::size_t c = 0; c < cells; ++c) e[c] += p[c];
      ++row_counts[dests[k]];
    }
  } else if (forgetting == 1.0) {
    for (; k + 4 <= n; k += 4) {
      const double* p0 = prior + dests[k] * cells;
      const double* p1 = prior + dests[k + 1] * cells;
      const double* p2 = prior + dests[k + 2] * cells;
      const double* p3 = prior + dests[k + 3] * cells;
      for (std::size_t c = 0; c < cells; ++c) {
        e[c] = (((e[c] + weight * p0[c]) + weight * p1[c]) + weight * p2[c]) +
               weight * p3[c];
      }
      ++row_counts[dests[k]];
      ++row_counts[dests[k + 1]];
      ++row_counts[dests[k + 2]];
      ++row_counts[dests[k + 3]];
    }
    for (; k < n; ++k) {
      const double* p = prior + dests[k] * cells;
      for (std::size_t c = 0; c < cells; ++c) e[c] += weight * p[c];
      ++row_counts[dests[k]];
    }
  } else {
    for (; k + 4 <= n; k += 4) {
      const double* p0 = prior + dests[k] * cells;
      const double* p1 = prior + dests[k + 1] * cells;
      const double* p2 = prior + dests[k + 2] * cells;
      const double* p3 = prior + dests[k + 3] * cells;
      for (std::size_t c = 0; c < cells; ++c) {
        double v = e[c] * forgetting + weight * p0[c];
        v = v * forgetting + weight * p1[c];
        v = v * forgetting + weight * p2[c];
        e[c] = v * forgetting + weight * p3[c];
      }
      ++row_counts[dests[k]];
      ++row_counts[dests[k + 1]];
      ++row_counts[dests[k + 2]];
      ++row_counts[dests[k + 3]];
    }
    for (; k < n; ++k) {
      const double* p = prior + dests[k] * cells;
      for (std::size_t c = 0; c < cells; ++c) {
        e[c] = e[c] * forgetting + weight * p[c];
      }
      ++row_counts[dests[k]];
    }
  }
}


using ReplayRowFn = void (*)(double*, const double*, std::size_t,
                             const std::uint32_t*, std::size_t,
                             std::uint32_t*, double, double);

void ReplayRowDefault(double* e, const double* prior, std::size_t cells,
                      const std::uint32_t* dests, std::size_t n,
                      std::uint32_t* row_counts, double weight,
                      double forgetting) {
  ReplayRowBody(e, prior, cells, dests, n, row_counts, weight, forgetting);
}

#if defined(__x86_64__) && defined(__GNUC__)
// Wider-vector clones of the same body. The sweeps are element-wise, so
// each e[c] sees exactly the same operations in the same order at any
// vector width; and this translation unit builds with -ffp-contract=off
// (see CMakeLists.txt) so the AVX-512 embedded-FMA forms cannot fuse
// e*f + w*p into a single rounding — results are bitwise identical to
// the baseline build, per the docs/kernels.md arithmetic-order
// contract. Selected once per process by CPU probe.
__attribute__((target("avx"))) void ReplayRowAvx(
    double* e, const double* prior, std::size_t cells,
    const std::uint32_t* dests, std::size_t n, std::uint32_t* row_counts,
    double weight, double forgetting) {
  ReplayRowBody(e, prior, cells, dests, n, row_counts, weight, forgetting);
}

__attribute__((target("avx512f"))) void ReplayRowAvx512(
    double* e, const double* prior, std::size_t cells,
    const std::uint32_t* dests, std::size_t n, std::uint32_t* row_counts,
    double weight, double forgetting) {
  ReplayRowBody(e, prior, cells, dests, n, row_counts, weight, forgetting);
}

ReplayRowFn SelectReplayRowFn() {
  if (__builtin_cpu_supports("avx512f")) return ReplayRowAvx512;
  if (__builtin_cpu_supports("avx")) return ReplayRowAvx;
  return ReplayRowDefault;
}
#else
ReplayRowFn SelectReplayRowFn() { return ReplayRowDefault; }
#endif

const ReplayRowFn kReplayRowFn = SelectReplayRowFn();

}  // namespace

void TransitionMatrix::ReplayTransitions(
    std::span<const Transition> transitions, double weight, double forgetting,
    const ParallelRunner& runner) {
  if (transitions.empty()) return;
  const std::size_t n = transitions.size();
#if PMCORR_DASSERT_ENABLED
  for (const Transition& t : transitions) {
    PMCORR_DASSERT(t.from < cells_ && t.to < cells_);
  }
#endif

  // Counting-sort the destinations into per-source-row buckets, keeping
  // each bucket in original arrival order. offsets_[row] .. offsets_[row
  // + 1) indexes the row's destinations in `dests`.
  std::vector<std::size_t> offsets(cells_ + 1, 0);
  for (const Transition& t : transitions) ++offsets[t.from + 1];
  for (std::size_t i = 1; i <= cells_; ++i) offsets[i] += offsets[i - 1];
  std::vector<std::uint32_t> dests(n);
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Transition& t : transitions) dests[cursor[t.from]++] = t.to;
  }
  std::vector<std::uint32_t> active;
  active.reserve(cells_);
  for (std::size_t row = 0; row < cells_; ++row) {
    if (offsets[row] != offsets[row + 1]) {
      active.push_back(static_cast<std::uint32_t>(row));
    }
  }

  // Replay each bucket in order. Buckets touch disjoint evidence/count
  // rows, so any schedule over `active` — including a parallel one —
  // produces the exact bits of the sequential ObserveTransition loop.
  const auto replay_row = [&](std::size_t a) {
    const std::size_t row = active[a];
    kReplayRowFn(evidence_.data() + row * cells_, prior_logw_.data(), cells_,
                 dests.data() + offsets[row], offsets[row + 1] - offsets[row],
                 counts_.data() + row * cells_, weight, forgetting);
    InvalidateRow(row);
  };
  if (runner) {
    runner(active.size(), replay_row);
  } else {
    for (std::size_t a = 0; a < active.size(); ++a) replay_row(a);
  }
  observed_ += n;
}

std::size_t TransitionMatrix::RankOf(std::size_t from, std::size_t to) const {
  if (cells_ == 0) return 0;
  PMCORR_DASSERT(from < cells_ && to < cells_);
  return RankInRow(from, to, PosteriorLogW(from, to));
}

std::size_t TransitionMatrix::ArgMax(std::size_t from) const {
  if (cells_ == 0) return 0;
  PMCORR_DASSERT(from < cells_);
  const RowCache& rc = cache_[from];
  if (rc.sorted_valid) return rc.sorted.front().second;
  const double* pw = prior_logw_.data() + from * cells_;
  const double* ev = evidence_.data() + from * cells_;
  std::size_t best = 0;
  for (std::size_t j = 1; j < cells_; ++j) {
    if (pw[j] + ev[j] > pw[best] + ev[best]) best = j;
  }
  return best;
}

std::uint64_t TransitionMatrix::CountOf(std::size_t from,
                                        std::size_t to) const {
  PMCORR_DASSERT(from < cells_ && to < cells_);
  return counts_[from * cells_ + to];
}

void TransitionMatrix::ApplyExtension(const GridExtension& ext,
                                      std::size_t old_cols,
                                      const Grid2D& new_grid,
                                      const DecayKernel& kernel,
                                      double likelihood_weight) {
  const std::size_t old_cells = cells_;
  TransitionMatrix grown = Prior(new_grid, kernel);
  std::vector<bool> is_old(grown.cells_, false);
  for (std::size_t i = 0; i < old_cells; ++i) {
    const std::size_t ni = Grid2D::RemapIndex(i, old_cols, ext);
    is_old[ni] = true;
    for (std::size_t j = 0; j < old_cells; ++j) {
      const std::size_t nj = Grid2D::RemapIndex(j, old_cols, ext);
      grown.evidence_[ni * grown.cells_ + nj] = evidence_[i * cells_ + j];
      grown.counts_[ni * grown.cells_ + nj] = counts_[i * cells_ + j];
    }
  }
  grown.observed_ = observed_;

  // Coordinates of every new-grid cell, decomposed once (the backfill
  // pairs every new column with every historical destination).
  std::vector<CellCoord> coords(grown.cells_);
  for (std::size_t j = 0; j < grown.cells_; ++j) {
    coords[j] = CellCoord{static_cast<int>(j / grown.cols_),
                          static_cast<int>(j % grown.cols_)};
  }

  // Backfill evidence for the new columns of previously-observed rows.
  struct Dest {
    CellCoord coord;
    double count;
  };
  for (std::size_t i = 0; i < old_cells; ++i) {
    const std::size_t ni = Grid2D::RemapIndex(i, old_cols, ext);
    // Sparse (destination, count) list of this row's history, in
    // ascending old-index order (the summation order is pinned).
    std::vector<Dest> dests;
    for (std::size_t j = 0; j < old_cells; ++j) {
      const std::uint32_t c = counts_[i * cells_ + j];
      if (c > 0) {
        dests.push_back(Dest{coords[Grid2D::RemapIndex(j, old_cols, ext)],
                             static_cast<double>(c)});
      }
    }
    if (dests.empty()) continue;
    for (std::size_t nj = 0; nj < grown.cells_; ++nj) {
      if (is_old[nj]) continue;
      const CellCoord nc = coords[nj];
      double evidence = 0.0;
      for (const Dest& d : dests) {
        evidence += d.count * grown.stencil_.LogWeight(d.coord.i1 - nc.i1,
                                                       d.coord.i2 - nc.i2);
      }
      grown.evidence_[ni * grown.cells_ + nj] =
          likelihood_weight * evidence;
    }
  }
  *this = std::move(grown);
}

void TransitionMatrix::CheckInvariants() const {
  if (cells_ == 0) {
    PMCORR_ASSERT(rows_ == 0 && cols_ == 0, "empty matrix with grid shape "
                                                << rows_ << "x" << cols_);
    PMCORR_ASSERT(prior_logw_.empty() && evidence_.empty() &&
                      counts_.empty() && cache_.empty(),
                  "empty matrix with live arrays");
    PMCORR_ASSERT(observed_ == 0, "empty matrix observed " << observed_);
    return;
  }
  PMCORR_ASSERT(rows_ * cols_ == cells_, "grid shape " << rows_ << "x"
                                                       << cols_ << " != "
                                                       << cells_ << " cells");
  const std::size_t entries = cells_ * cells_;
  PMCORR_ASSERT(prior_logw_.size() == entries, "prior size "
                                                   << prior_logw_.size());
  PMCORR_ASSERT(evidence_.size() == entries,
                "evidence size " << evidence_.size());
  PMCORR_ASSERT(counts_.size() == entries, "counts size " << counts_.size());
  PMCORR_ASSERT(cache_.size() == cells_, "cache size " << cache_.size());
  stencil_.CheckInvariants();
  PMCORR_ASSERT(stencil_.Matches(rows_, cols_),
                "stencil built for " << stencil_.GridRows() << "x"
                                     << stencil_.GridCols() << ", grid is "
                                     << rows_ << "x" << cols_);

  std::uint64_t count_total = 0;
  std::vector<std::uint8_t> seen(cells_, 0);
  for (std::size_t i = 0; i < cells_; ++i) {
    const double* pw = prior_logw_.data() + i * cells_;
    const double* ev = evidence_.data() + i * cells_;
    const int ci = static_cast<int>(i / cols_);
    const int cj = static_cast<int>(i % cols_);

    // Prior row i is the stencil centered at cell i, bitwise.
    for (std::size_t j = 0; j < cells_; ++j) {
      const int dj_row = static_cast<int>(j / cols_) - ci;
      const int dj_col = static_cast<int>(j % cols_) - cj;
      PMCORR_ASSERT(pw[j] == stencil_.LogWeight(dj_row, dj_col),
                    "prior (" << i << "," << j
                              << ") disagrees with the stencil");
      PMCORR_ASSERT(std::isfinite(ev[j]) && ev[j] <= 0.0,
                    "evidence (" << i << "," << j << ") = " << ev[j]);
      count_total += counts_[i * cells_ + j];
    }

    // Row i of the posterior stays a probability distribution: the
    // normalized row sums to 1. Recomputed here without touching the
    // row cache, in the cache's scan order.
    double max_logw = pw[0] + ev[0];
    for (std::size_t j = 1; j < cells_; ++j) {
      max_logw = std::max(max_logw, pw[j] + ev[j]);
    }
    double sum_exp = 0.0;
    for (std::size_t j = 0; j < cells_; ++j) {
      sum_exp += std::exp(pw[j] + ev[j] - max_logw);
    }
    PMCORR_ASSERT(std::isfinite(sum_exp) && sum_exp >= 1.0,
                  "row " << i << " normalizer " << sum_exp);
    double prob_sum = 0.0;
    for (std::size_t j = 0; j < cells_; ++j) {
      const double p = std::exp(pw[j] + ev[j] - max_logw) / sum_exp;
      PMCORR_ASSERT(p >= 0.0 && p <= 1.0,
                    "P(" << i << "->" << j << ") = " << p);
      prob_sum += p;
    }
    PMCORR_ASSERT(std::abs(prob_sum - 1.0) <= 1e-9,
                  "row " << i << " sums to " << prob_sum);

    // Cache coherence: memoized values must be exactly what the scans
    // above produce — a stale-but-valid cache is silent corruption.
    const RowCache& rc = cache_[i];
    if (rc.stats_valid) {
      PMCORR_ASSERT(rc.max_logw == max_logw,
                    "row " << i << " cached max " << rc.max_logw
                           << " != " << max_logw);
      PMCORR_ASSERT(rc.sum_exp == sum_exp, "row " << i << " cached sum-exp "
                                                  << rc.sum_exp
                                                  << " != " << sum_exp);
    }
    if (rc.sorted_valid) {
      PMCORR_ASSERT(rc.stats_valid, "row " << i
                                           << " sorted without stats");
      PMCORR_ASSERT(rc.sorted.size() == cells_,
                    "row " << i << " rank index size " << rc.sorted.size());
      std::fill(seen.begin(), seen.end(), 0);
      for (std::size_t k = 0; k < rc.sorted.size(); ++k) {
        const auto& [w, j] = rc.sorted[k];
        PMCORR_ASSERT(j < cells_ && !seen[j],
                      "row " << i << " rank index entry " << k
                             << " is not a permutation");
        seen[j] = 1;
        PMCORR_ASSERT(w == pw[j] + ev[j],
                      "row " << i << " rank index weight for cell " << j
                             << " is stale");
        if (k > 0) {
          const auto& [pw_prev, pj] = rc.sorted[k - 1];
          PMCORR_ASSERT(pw_prev > w || (pw_prev == w && pj < j),
                        "row " << i << " rank index misordered at " << k);
        }
      }
    }
  }
  PMCORR_ASSERT(count_total == observed_, "counts sum to "
                                              << count_total << ", observed "
                                              << observed_);
}

void TransitionMatrix::RestoreState(std::vector<double> evidence,
                                    std::vector<std::uint32_t> counts,
                                    std::uint64_t observed) {
  if (evidence.size() != cells_ * cells_ || counts.size() != cells_ * cells_) {
    throw std::invalid_argument(
        "TransitionMatrix::RestoreState: size mismatch with current grid");
  }
  evidence_ = std::move(evidence);
  counts_ = std::move(counts);
  observed_ = observed;
  cache_.assign(cells_, RowCache{});
  PMCORR_AUDIT_ONLY(CheckInvariants();)
}

std::vector<std::uint64_t> TransitionDistanceHistogram(
    const TransitionMatrix& matrix, const Grid2D& grid) {
  const std::size_t cells = matrix.CellCount();
  const std::size_t max_d =
      std::max(grid.Rows(), grid.Cols());
  std::vector<std::uint64_t> hist(max_d, 0);
  // Decompose the s cell coordinates once instead of twice per nonzero
  // (i, j) pair.
  std::vector<CellCoord> coords(cells);
  for (std::size_t i = 0; i < cells; ++i) coords[i] = grid.CoordOf(i);
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t j = 0; j < cells; ++j) {
      const std::uint64_t c = matrix.CountOf(i, j);
      if (c == 0) continue;
      const CellCoord ca = coords[i];
      const CellCoord cb = coords[j];
      const auto d = static_cast<std::size_t>(
          std::max(std::abs(ca.i1 - cb.i1), std::abs(ca.i2 - cb.i2)));
      if (d >= hist.size()) hist.resize(d + 1, 0);
      hist[d] += c;
    }
  }
  return hist;
}

}  // namespace pmcorr
