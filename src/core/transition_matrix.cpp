#include "core/transition_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pmcorr {
namespace {

// Absolute coordinate deltas between two cells of `grid`.
std::pair<int, int> Deltas(const Grid2D& grid, std::size_t a, std::size_t b) {
  const CellCoord ca = grid.CoordOf(a);
  const CellCoord cb = grid.CoordOf(b);
  return {std::abs(ca.i1 - cb.i1), std::abs(ca.i2 - cb.i2)};
}

}  // namespace

TransitionMatrix TransitionMatrix::Prior(const Grid2D& grid,
                                         const DecayKernel& kernel) {
  TransitionMatrix m;
  m.cells_ = grid.CellCount();
  m.prior_logw_.resize(m.cells_ * m.cells_);
  m.evidence_.assign(m.cells_ * m.cells_, 0.0);
  m.counts_.assign(m.cells_ * m.cells_, 0);
  for (std::size_t i = 0; i < m.cells_; ++i) {
    for (std::size_t j = 0; j < m.cells_; ++j) {
      const auto [dx, dy] = Deltas(grid, i, j);
      m.prior_logw_[i * m.cells_ + j] = kernel.LogWeight(dx, dy);
    }
  }
  return m;
}

double TransitionMatrix::Probability(std::size_t from, std::size_t to) const {
  assert(from < cells_ && to < cells_);
  double max_logw = PosteriorLogW(from, 0);
  for (std::size_t j = 1; j < cells_; ++j) {
    max_logw = std::max(max_logw, PosteriorLogW(from, j));
  }
  double total = 0.0;
  for (std::size_t j = 0; j < cells_; ++j) {
    total += std::exp(PosteriorLogW(from, j) - max_logw);
  }
  return std::exp(PosteriorLogW(from, to) - max_logw) / total;
}

std::vector<double> TransitionMatrix::RowDistribution(std::size_t from) const {
  assert(from < cells_);
  std::vector<double> row(cells_);
  double max_logw = PosteriorLogW(from, 0);
  for (std::size_t j = 1; j < cells_; ++j) {
    max_logw = std::max(max_logw, PosteriorLogW(from, j));
  }
  double total = 0.0;
  for (std::size_t j = 0; j < cells_; ++j) {
    row[j] = std::exp(PosteriorLogW(from, j) - max_logw);
    total += row[j];
  }
  for (double& p : row) p /= total;
  return row;
}

void TransitionMatrix::ObserveTransition(std::size_t from,
                                         std::size_t observed,
                                         const Grid2D& grid,
                                         const DecayKernel& kernel,
                                         double weight, double forgetting) {
  assert(from < cells_ && observed < cells_);
  assert(grid.CellCount() == cells_);
  for (std::size_t j = 0; j < cells_; ++j) {
    const auto [dx, dy] = Deltas(grid, observed, j);
    double& e = evidence_[from * cells_ + j];
    e = e * forgetting + weight * kernel.LogWeight(dx, dy);
  }
  ++counts_[from * cells_ + observed];
  ++observed_;
}

std::size_t TransitionMatrix::RankOf(std::size_t from, std::size_t to) const {
  assert(from < cells_ && to < cells_);
  const double target = PosteriorLogW(from, to);
  std::size_t rank = 1;
  for (std::size_t j = 0; j < cells_; ++j) {
    const double w = PosteriorLogW(from, j);
    if (w > target || (w == target && j < to)) ++rank;
  }
  return rank;
}

std::size_t TransitionMatrix::ArgMax(std::size_t from) const {
  assert(from < cells_);
  std::size_t best = 0;
  for (std::size_t j = 1; j < cells_; ++j) {
    if (PosteriorLogW(from, j) > PosteriorLogW(from, best)) best = j;
  }
  return best;
}

std::uint64_t TransitionMatrix::CountOf(std::size_t from,
                                        std::size_t to) const {
  assert(from < cells_ && to < cells_);
  return counts_[from * cells_ + to];
}

void TransitionMatrix::ApplyExtension(const GridExtension& ext,
                                      std::size_t old_cols,
                                      const Grid2D& new_grid,
                                      const DecayKernel& kernel,
                                      double likelihood_weight) {
  const std::size_t old_cells = cells_;
  TransitionMatrix grown = Prior(new_grid, kernel);
  std::vector<bool> is_old(grown.cells_, false);
  for (std::size_t i = 0; i < old_cells; ++i) {
    const std::size_t ni = Grid2D::RemapIndex(i, old_cols, ext);
    is_old[ni] = true;
    for (std::size_t j = 0; j < old_cells; ++j) {
      const std::size_t nj = Grid2D::RemapIndex(j, old_cols, ext);
      grown.evidence_[ni * grown.cells_ + nj] = evidence_[i * cells_ + j];
      grown.counts_[ni * grown.cells_ + nj] = counts_[i * cells_ + j];
    }
  }
  grown.observed_ = observed_;

  // Backfill evidence for the new columns of previously-observed rows.
  for (std::size_t i = 0; i < old_cells; ++i) {
    const std::size_t ni = Grid2D::RemapIndex(i, old_cols, ext);
    // Sparse (destination, count) list of this row's history.
    std::vector<std::pair<std::size_t, double>> dests;
    for (std::size_t j = 0; j < old_cells; ++j) {
      const std::uint32_t c = counts_[i * cells_ + j];
      if (c > 0) {
        dests.emplace_back(Grid2D::RemapIndex(j, old_cols, ext),
                           static_cast<double>(c));
      }
    }
    if (dests.empty()) continue;
    for (std::size_t nj = 0; nj < grown.cells_; ++nj) {
      if (is_old[nj]) continue;
      double evidence = 0.0;
      for (const auto& [dest, count] : dests) {
        const auto [dx, dy] = Deltas(new_grid, dest, nj);
        evidence += count * kernel.LogWeight(dx, dy);
      }
      grown.evidence_[ni * grown.cells_ + nj] =
          likelihood_weight * evidence;
    }
  }
  *this = std::move(grown);
}

void TransitionMatrix::RestoreState(std::vector<double> evidence,
                                    std::vector<std::uint32_t> counts,
                                    std::uint64_t observed) {
  if (evidence.size() != cells_ * cells_ || counts.size() != cells_ * cells_) {
    throw std::invalid_argument(
        "TransitionMatrix::RestoreState: size mismatch with current grid");
  }
  evidence_ = std::move(evidence);
  counts_ = std::move(counts);
  observed_ = observed;
}

std::vector<std::uint64_t> TransitionDistanceHistogram(
    const TransitionMatrix& matrix, const Grid2D& grid) {
  const std::size_t cells = matrix.CellCount();
  const std::size_t max_d =
      std::max(grid.Rows(), grid.Cols());
  std::vector<std::uint64_t> hist(max_d, 0);
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t j = 0; j < cells; ++j) {
      const std::uint64_t c = matrix.CountOf(i, j);
      if (c == 0) continue;
      const CellCoord ca = grid.CoordOf(i);
      const CellCoord cb = grid.CoordOf(j);
      const auto d = static_cast<std::size_t>(
          std::max(std::abs(ca.i1 - cb.i1), std::abs(ca.i2 - cb.i2)));
      if (d >= hist.size()) hist.resize(d + 1, 0);
      hist[d] += c;
    }
  }
  return hist;
}

}  // namespace pmcorr
