// Configuration of the pair-wise transition probability model M = (G, V).
#pragma once

#include "grid/kernels.h"
#include "grid/partitioner.h"

namespace pmcorr {

/// All tuning knobs of a PairModel. Defaults follow the paper where it is
/// explicit and use conservative values elsewhere (each choice is noted).
struct ModelConfig {
  /// Grid discretization (Section 4.1).
  PartitionerConfig partition;

  /// Decay kernel shared by the prior and the Eq. (2) likelihood.
  KernelConfig kernel;

  /// λ per dimension: the maximum number of r_avg-sized intervals the
  /// boundary may grow by for one out-of-grid point (Section 4.1 Update).
  /// Points farther out are outliers.
  double lambda1 = 3.0;
  double lambda2 = 3.0;

  /// δ — alarm when P(x_t -> x_{t+1}) drops below this (Figure 6).
  /// The transition matrix row is a distribution over s cells, so useful
  /// values scale like 1/s; 0 disables probability alarms.
  double delta = 0.0;

  /// Alarm when the rank-based fitness score drops below this
  /// (Section 5); 0 disables fitness alarms.
  double fitness_alarm_threshold = 0.0;

  /// Exponential forgetting applied to the accumulated log-likelihood
  /// before each online update. 1.0 reproduces the paper's literal
  /// Eq. (1) (every historical transition keeps full weight); values
  /// slightly below 1 bound the posterior's sharpness so probability
  /// thresholds remain meaningful over long streams.
  double forgetting = 1.0;

  /// Relative weight of one observed transition in the posterior update
  /// (scales the Eq. (2) log-likelihood term).
  double likelihood_weight = 1.0;

  /// When false the model is frozen after initialization — the "Offline"
  /// method of Figure 13(a). When true, the grid and matrix adapt online.
  bool adaptive = true;
};

}  // namespace pmcorr
