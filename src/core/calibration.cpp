#include "core/calibration.h"

#include <algorithm>
#include <vector>

#include "common/stats.h"

namespace pmcorr {

ThresholdCalibration CalibrateOnHoldout(const PairModel& model,
                                        std::span<const double> x,
                                        std::span<const double> y,
                                        double target_false_positive_rate) {
  const double q = std::clamp(target_false_positive_rate, 0.0, 1.0);

  // Frozen copy: the replay must not adapt the grid or matrix, and must
  // not alarm (thresholds off) so every transition is scored.
  ModelConfig frozen_config = model.Config();
  frozen_config.adaptive = false;
  frozen_config.delta = 0.0;
  frozen_config.fitness_alarm_threshold = 0.0;
  PairModel frozen =
      PairModel::FromParts(frozen_config, model.Grid(), model.Matrix());

  std::vector<double> fitness;
  std::vector<double> probability;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    const StepOutcome out = frozen.Step(x[i], y[i]);
    if (out.has_score) {
      fitness.push_back(out.fitness);
      probability.push_back(out.probability);
    }
  }

  ThresholdCalibration calibration;
  calibration.samples = fitness.size();
  if (!fitness.empty()) {
    calibration.fitness_threshold = Quantile(fitness, q).value_or(0.0);
    calibration.delta = Quantile(probability, q).value_or(0.0);
  }
  return calibration;
}

ModelConfig WithCalibratedThresholds(
    const ModelConfig& config, const ThresholdCalibration& calibration) {
  ModelConfig out = config;
  out.fitness_alarm_threshold = calibration.fitness_threshold;
  out.delta = calibration.delta;
  return out;
}

}  // namespace pmcorr
