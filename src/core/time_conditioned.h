// Time-of-day conditioned pair model — an extension beyond the paper.
//
// Figures 15/16 show the plain model is least accurate at peak hours:
// one transition matrix must explain both the calm overnight regime and
// the volatile busy-hour regime. This extension partitions the day into
// buckets (e.g. night / business / evening) and trains an independent
// M = (G, V) per bucket; each observation is scored by its bucket's
// model. bench_time_conditioning ablates it against the plain model on
// workloads whose correlation structure genuinely changes by hour (e.g.
// nightly batch jobs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/time.h"
#include "core/model.h"

namespace pmcorr {

/// Configuration: bucket boundaries as hours-of-day.
struct TimeConditionedConfig {
  ModelConfig model;
  /// Ascending start hours; bucket i covers [start[i], start[i+1]) and
  /// the last bucket wraps to start[0]. {0} = a single bucket =
  /// exactly the paper's model.
  std::vector<int> bucket_start_hours = {0, 7, 19};
};

class TimeConditionedPairModel {
 public:
  /// Learns one PairModel per bucket from timestamped history. Within a
  /// bucket, samples that were not adjacent in the original stream (the
  /// bucket's daily segments) do not form transitions.
  static TimeConditionedPairModel Learn(std::span<const double> x,
                                        std::span<const double> y,
                                        std::span<const TimePoint> times,
                                        const TimeConditionedConfig& config);

  /// Scores one observation with its bucket's model. Crossing into a new
  /// bucket starts that bucket's transition sequence fresh (the previous
  /// observation belongs to a different regime's model).
  StepOutcome Step(double x, double y, TimePoint tp);

  std::size_t BucketCount() const { return models_.size(); }

  /// The bucket index for a timestamp.
  std::size_t BucketOf(TimePoint tp) const;

  /// The per-bucket model (for inspection).
  const PairModel& Model(std::size_t bucket) const {
    return models_.at(bucket);
  }

 private:
  TimeConditionedConfig config_;
  std::vector<PairModel> models_;
  std::size_t last_bucket_ = static_cast<std::size_t>(-1);
};

}  // namespace pmcorr
