#include "core/model.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/fitness.h"
#include "grid/partitioner.h"

namespace pmcorr {

PairModel PairModel::Learn(std::span<const double> x,
                           std::span<const double> y,
                           const ModelConfig& config) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument(
        "PairModel::Learn: history vectors must be non-empty and equal size");
  }

  // Drop non-finite history samples (collector gaps) before building the
  // grid; NaNs must never reach the interval search.
  std::vector<double> fx, fy;
  fx.reserve(x.size());
  fy.reserve(y.size());
  for (std::size_t t = 0; t < x.size(); ++t) {
    if (std::isfinite(x[t]) && std::isfinite(y[t])) {
      fx.push_back(x[t]);
      fy.push_back(y[t]);
    }
  }
  if (fx.empty()) {
    throw std::invalid_argument(
        "PairModel::Learn: history contains no finite samples");
  }

  PairModel model;
  model.config_ = config;
  model.kernel_ = MakeKernel(config.kernel);
  model.grid_ = Grid2D(PartitionDimension(fx, config.partition),
                       PartitionDimension(fy, config.partition));
  model.matrix_ = TransitionMatrix::Prior(model.grid_, *model.kernel_);

  // Replay the history transitions through the Bayesian update (Eq. 1):
  // the posterior after the snapshot is the model's initial V. The replay
  // walks the *original* sequence so a gap breaks the transition chain
  // instead of stitching its neighbors together.
  std::optional<std::size_t> prev;
  for (std::size_t t = 0; t < x.size(); ++t) {
    std::optional<std::size_t> cell;
    if (std::isfinite(x[t]) && std::isfinite(y[t])) {
      cell = model.grid_.CellOf({x[t], y[t]});
    }
    if (cell && prev) {
      model.matrix_.ObserveTransition(*prev, *cell, model.grid_,
                                      *model.kernel_,
                                      config.likelihood_weight,
                                      config.forgetting);
    }
    prev = cell;
  }
  return model;
}

PairModel PairModel::FromParts(ModelConfig config, Grid2D grid,
                               TransitionMatrix matrix) {
  PairModel model;
  model.config_ = config;
  model.kernel_ = MakeKernel(config.kernel);
  model.grid_ = std::move(grid);
  model.matrix_ = std::move(matrix);
  return model;
}

StepOutcome PairModel::Step(double x, double y) {
  ++stats_.steps;
  StepOutcome out;

  // Collector gaps: a non-finite coordinate cannot be located in the
  // grid and the transition across the gap is unknowable — skip the
  // sample and restart the sequence (the paper's streams are assumed
  // complete; real feeds are not).
  if (!std::isfinite(x) || !std::isfinite(y)) {
    out.missing = true;
    prev_cell_.reset();
    return out;
  }

  const Point2 p{x, y};

  std::optional<std::size_t> cell = grid_.CellOf(p);
  if (!cell && config_.adaptive) {
    // Out of boundary but perhaps only just: the paper treats points
    // within lambda * r_avg as evidence of gradual distribution change
    // and grows the grid; anything farther is an outlier.
    const std::size_t old_cols = grid_.Cols();
    if (const auto ext =
            grid_.ExtendToInclude(p, config_.lambda1, config_.lambda2)) {
      matrix_.ApplyExtension(*ext, old_cols, grid_, *kernel_,
                             config_.likelihood_weight);
      if (prev_cell_) {
        prev_cell_ = Grid2D::RemapIndex(*prev_cell_, old_cols, *ext);
      }
      cell = grid_.CellOf(p);
      out.extended_grid = true;
      ++stats_.extensions;
      assert(cell.has_value());
    }
  }

  if (!cell) {
    // Outlier: transition probability 0, fitness 0, no model update, and
    // the next observation has no valid source cell.
    out.outlier = true;
    ++stats_.outliers;
    if (prev_cell_) {
      out.has_score = true;
      ++stats_.scored;
    }
    const bool alarm_configured =
        config_.delta > 0.0 || config_.fitness_alarm_threshold > 0.0;
    out.alarm = alarm_configured;
    if (out.alarm) ++stats_.alarms;
    prev_cell_.reset();
    return out;
  }

  out.cell = cell;
  if (prev_cell_) {
    out.has_score = true;
    ++stats_.scored;
    // One fused row scan (probability + rank together) instead of the
    // separate Probability and RankOf passes; bitwise-identical results.
    const TransitionScore score = matrix_.ScoreTransition(*prev_cell_, *cell);
    out.probability = score.probability;
    out.rank = score.rank;
    out.fitness = RankFitness(out.rank, matrix_.CellCount());
    out.alarm = (config_.delta > 0.0 && out.probability < config_.delta) ||
                (config_.fitness_alarm_threshold > 0.0 &&
                 out.fitness < config_.fitness_alarm_threshold);
    if (out.alarm) ++stats_.alarms;

    // "We update the model to incorporate the actual transition made by
    // x_{t+1} if it is normal" — alarmed transitions are left out.
    if (config_.adaptive && !out.alarm) {
      matrix_.ObserveTransition(*prev_cell_, *cell, grid_, *kernel_,
                                config_.likelihood_weight,
                                config_.forgetting);
      ++stats_.matrix_updates;
    }
  }
  prev_cell_ = cell;
  return out;
}

}  // namespace pmcorr
