#include "core/model.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "core/fitness.h"
#include "grid/partitioner.h"

namespace pmcorr {

// Shared front half of Learn/LearnSequential: validates the history,
// drops non-finite samples (collector gaps — NaNs must never reach the
// interval search) and builds M's grid, kernel and prior.
PairModel PairModel::InitFromHistory(std::span<const double> x,
                                     std::span<const double> y,
                                     const ModelConfig& config,
                                     bool& gap_free) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument(
        "PairModel::Learn: history vectors must be non-empty and equal size");
  }
  // Gap-free histories (the common case) partition straight from the
  // input spans, reusing the fused scan's extrema so neither history is
  // walked twice; only histories with non-finite samples pay for the
  // filtered copies (and their rescans).
  std::span<const double> fx = x;
  std::span<const double> fy = y;
  std::vector<double> fx_store, fy_store;
  const ValueScan scan_x = ScanValues(x);
  const ValueScan scan_y = ScanValues(y);
  gap_free = scan_x.all_finite && scan_y.all_finite;
  if (!gap_free) {
    fx_store.reserve(x.size());
    fy_store.reserve(y.size());
    for (std::size_t t = 0; t < x.size(); ++t) {
      if (std::isfinite(x[t]) && std::isfinite(y[t])) {
        fx_store.push_back(x[t]);
        fy_store.push_back(y[t]);
      }
    }
    if (fx_store.empty()) {
      throw std::invalid_argument(
          "PairModel::Learn: history contains no finite samples");
    }
    fx = fx_store;
    fy = fy_store;
  }
  PairModel model;
  model.config_ = config;
  model.kernel_ = MakeKernel(config.kernel);
  model.grid_ =
      gap_free
          ? Grid2D(PartitionDimension(fx, config.partition, scan_x.min,
                                      scan_x.max),
                   PartitionDimension(fy, config.partition, scan_y.min,
                                      scan_y.max))
          : Grid2D(PartitionDimension(fx, config.partition),
                   PartitionDimension(fy, config.partition));
  model.matrix_ = TransitionMatrix::Prior(model.grid_, *model.kernel_);
  return model;
}

PairModel PairModel::Learn(std::span<const double> x,
                           std::span<const double> y,
                           const ModelConfig& config,
                           const ParallelRunner& runner) {
  bool gap_free = false;
  PairModel model = InitFromHistory(x, y, config, gap_free);
  // Phase 1 — compile. Map the history to a cell-index transition
  // sequence in one pass. Lookups are hinted with the previous sample's
  // interval indices: the paper's locality study (412 of 701 observed
  // transitions stay in-cell, 280 hit the nearest neighbor) makes the
  // hint resolve most samples without a binary search. The walk follows
  // the *original* sequence so a gap breaks the transition chain instead
  // of stitching its neighbors together, exactly like LearnSequential.
  const IntervalList& dim1 = model.grid_.Dim1();
  const IntervalList& dim2 = model.grid_.Dim2();
  const std::size_t cols = model.grid_.Cols();
  std::vector<Transition> transitions;
  if (gap_free) {
    // Branch-light walk for gap-free histories: the grid was built from
    // this history's min/max plus padding, so every sample locates (the
    // npos arm is dead) and every adjacent pair is a transition.
    transitions.resize(x.size() - 1);
    Transition* out = transitions.data();
    std::size_t h1 = dim1.IndexOf(x[0], 0);
    std::size_t h2 = dim2.IndexOf(y[0], 0);
    PMCORR_DASSERT(h1 != IntervalList::npos && h2 != IntervalList::npos);
    auto prev_cell = static_cast<std::uint32_t>(h1 * cols + h2);
    for (std::size_t t = 1; t < x.size(); ++t) {
      h1 = dim1.IndexOf(x[t], h1);
      h2 = dim2.IndexOf(y[t], h2);
      const auto cell = static_cast<std::uint32_t>(h1 * cols + h2);
      *out++ = {prev_cell, cell};
      prev_cell = cell;
    }
  } else {
    transitions.reserve(x.size());
    bool have_prev = false;
    std::size_t h1 = 0, h2 = 0;  // hints: last located interval per dim
    std::uint32_t prev_cell = 0;
    for (std::size_t t = 0; t < x.size(); ++t) {
      if (!std::isfinite(x[t]) || !std::isfinite(y[t])) {
        have_prev = false;
        continue;
      }
      const std::size_t i1 = dim1.IndexOf(x[t], h1);
      const std::size_t i2 = dim2.IndexOf(y[t], h2);
      if (i1 == IntervalList::npos || i2 == IntervalList::npos) {
        have_prev = false;
        continue;
      }
      h1 = i1;
      h2 = i2;
      const auto cell = static_cast<std::uint32_t>(i1 * cols + i2);
      if (have_prev) transitions.push_back({prev_cell, cell});
      prev_cell = cell;
      have_prev = true;
    }
  }

  // Phase 2 — replay, bucketed by source row (Eq. 1: the posterior
  // after the snapshot is the model's initial V).
  model.matrix_.ReplayTransitions(transitions, config.likelihood_weight,
                                  config.forgetting, runner);
  PMCORR_AUDIT_ONLY(model.CheckInvariants();)
  return model;
}

PairModel PairModel::LearnSequential(std::span<const double> x,
                                     std::span<const double> y,
                                     const ModelConfig& config) {
  bool gap_free = false;
  PairModel model = InitFromHistory(x, y, config, gap_free);
  // Unhinted lookups and the stencil-walk observe: this is the
  // pre-pipeline Learn, preserved as an arithmetically independent path
  // (it shares none of the hinted-lookup or flat prior-row-sweep code)
  // so the differential tests pin Learn against genuinely different
  // machinery, and the model-building benchmark's A side measures it.
  std::optional<std::size_t> prev;
  for (std::size_t t = 0; t < x.size(); ++t) {
    std::optional<std::size_t> cell;
    if (std::isfinite(x[t]) && std::isfinite(y[t])) {
      cell = model.grid_.CellOf({x[t], y[t]});
    }
    if (cell && prev) {
      model.matrix_.ObserveTransitionStencil(*prev, *cell, model.grid_,
                                             *model.kernel_,
                                             config.likelihood_weight,
                                             config.forgetting);
    }
    prev = cell;
  }
  PMCORR_AUDIT_ONLY(model.CheckInvariants();)
  return model;
}

PairModel PairModel::FromParts(ModelConfig config, Grid2D grid,
                               TransitionMatrix matrix) {
  PairModel model;
  model.config_ = config;
  model.kernel_ = MakeKernel(config.kernel);
  model.grid_ = std::move(grid);
  model.matrix_ = std::move(matrix);
  PMCORR_AUDIT_ONLY(model.CheckInvariants();)
  return model;
}

void PairModel::CheckInvariants() const {
  grid_.CheckInvariants();
  matrix_.CheckInvariants();
  if (kernel_ == nullptr) {
    // Default-constructed model: nothing was learned yet.
    PMCORR_ASSERT(grid_.CellCount() == 0 && matrix_.CellCount() == 0,
                  "model has state but no kernel");
    return;
  }
  PMCORR_ASSERT(matrix_.GridRows() == grid_.Rows() &&
                    matrix_.GridCols() == grid_.Cols(),
                "matrix built for " << matrix_.GridRows() << "x"
                                    << matrix_.GridCols() << ", grid is "
                                    << grid_.Rows() << "x" << grid_.Cols());
  PMCORR_ASSERT(matrix_.CellCount() == grid_.CellCount());
  // The stencil must tabulate *this* model's kernel — a mismatch would
  // silently corrupt every row sweep after a grid extension.
  matrix_.Stencil().CheckInvariants(kernel_.get());
  PMCORR_ASSERT(config_.lambda1 >= 0.0 && config_.lambda2 >= 0.0,
                "lambda " << config_.lambda1 << "," << config_.lambda2);
  PMCORR_ASSERT(config_.delta >= 0.0 && config_.delta <= 1.0,
                "delta " << config_.delta);
  PMCORR_ASSERT(config_.fitness_alarm_threshold >= 0.0 &&
                    config_.fitness_alarm_threshold <= 1.0,
                "fitness threshold " << config_.fitness_alarm_threshold);
  PMCORR_ASSERT(config_.forgetting > 0.0 && config_.forgetting <= 1.0,
                "forgetting " << config_.forgetting);
  PMCORR_ASSERT(config_.likelihood_weight > 0.0 &&
                    std::isfinite(config_.likelihood_weight),
                "likelihood weight " << config_.likelihood_weight);
  if (prev_cell_) {
    PMCORR_ASSERT(*prev_cell_ < matrix_.CellCount(),
                  "previous cell " << *prev_cell_ << " outside the "
                                   << grid_.CellCount() << "-cell grid");
  }
}

StepOutcome PairModel::Step(double x, double y) {
  // Audit builds re-verify the full model after every step, on every
  // exit path (missing, outlier, extension, scored). noexcept(false):
  // the test-mode failure handler throws.
  PMCORR_AUDIT_ONLY(struct StepAuditor {
    const PairModel* model;
    ~StepAuditor() noexcept(false) { model->CheckInvariants(); }
  } step_auditor{this};)

  ++stats_.steps;
  StepOutcome out;

  // Collector gaps: a non-finite coordinate cannot be located in the
  // grid and the transition across the gap is unknowable — skip the
  // sample and restart the sequence (the paper's streams are assumed
  // complete; real feeds are not).
  if (!std::isfinite(x) || !std::isfinite(y)) {
    out.missing = true;
    prev_cell_.reset();
    return out;
  }

  const Point2 p{x, y};

  // The previous cell is the best guess for this one (59% of observed
  // transitions stay in-cell): the hinted lookup checks it and its
  // neighbors before binary-searching.
  std::optional<std::size_t> cell =
      prev_cell_ ? grid_.CellOf(p, *prev_cell_) : grid_.CellOf(p);
  if (!cell && config_.adaptive) {
    // Out of boundary but perhaps only just: the paper treats points
    // within lambda * r_avg as evidence of gradual distribution change
    // and grows the grid; anything farther is an outlier.
    const std::size_t old_cols = grid_.Cols();
    if (const auto ext =
            grid_.ExtendToInclude(p, config_.lambda1, config_.lambda2)) {
      matrix_.ApplyExtension(*ext, old_cols, grid_, *kernel_,
                             config_.likelihood_weight);
      if (prev_cell_) {
        prev_cell_ = Grid2D::RemapIndex(*prev_cell_, old_cols, *ext);
      }
      cell = grid_.CellOf(p);
      out.extended_grid = true;
      ++stats_.extensions;
      PMCORR_DASSERT(cell.has_value());
    }
  }

  if (!cell) {
    // Outlier: transition probability 0, fitness 0, no model update, and
    // the next observation has no valid source cell.
    out.outlier = true;
    ++stats_.outliers;
    if (prev_cell_) {
      out.has_score = true;
      ++stats_.scored;
    }
    const bool alarm_configured =
        config_.delta > 0.0 || config_.fitness_alarm_threshold > 0.0;
    out.alarm = alarm_configured;
    if (out.alarm) ++stats_.alarms;
    prev_cell_.reset();
    return out;
  }

  out.cell = cell;
  if (prev_cell_) {
    out.has_score = true;
    ++stats_.scored;
    // One fused row scan (probability + rank together) instead of the
    // separate Probability and RankOf passes; bitwise-identical results.
    const TransitionScore score = matrix_.ScoreTransition(*prev_cell_, *cell);
    out.probability = score.probability;
    out.rank = score.rank;
    out.fitness = RankFitness(out.rank, matrix_.CellCount());
    out.alarm = (config_.delta > 0.0 && out.probability < config_.delta) ||
                (config_.fitness_alarm_threshold > 0.0 &&
                 out.fitness < config_.fitness_alarm_threshold);
    if (out.alarm) ++stats_.alarms;

    // "We update the model to incorporate the actual transition made by
    // x_{t+1} if it is normal" — alarmed transitions are left out.
    if (config_.adaptive && !out.alarm) {
      matrix_.ObserveTransition(*prev_cell_, *cell, grid_, *kernel_,
                                config_.likelihood_weight,
                                config_.forgetting);
      ++stats_.matrix_updates;
    }
  }
  prev_cell_ = cell;
  return out;
}

}  // namespace pmcorr
