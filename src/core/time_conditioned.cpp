#include "core/time_conditioned.h"

#include <limits>
#include <stdexcept>

namespace pmcorr {

std::size_t TimeConditionedPairModel::BucketOf(TimePoint tp) const {
  const int hour = static_cast<int>(SecondsIntoDay(tp) / kHour);
  const auto& starts = config_.bucket_start_hours;
  // The last bucket whose start is <= hour; hours before the first start
  // wrap into the final bucket.
  std::size_t bucket = starts.size() - 1;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    if (hour >= starts[i]) bucket = i;
  }
  return bucket;
}

TimeConditionedPairModel TimeConditionedPairModel::Learn(
    std::span<const double> x, std::span<const double> y,
    std::span<const TimePoint> times, const TimeConditionedConfig& config) {
  if (x.size() != y.size() || x.size() != times.size() || x.empty()) {
    throw std::invalid_argument(
        "TimeConditionedPairModel::Learn: inputs must be non-empty and"
        " equal size");
  }
  if (config.bucket_start_hours.empty()) {
    throw std::invalid_argument(
        "TimeConditionedPairModel::Learn: need at least one bucket");
  }
  for (std::size_t i = 1; i < config.bucket_start_hours.size(); ++i) {
    if (config.bucket_start_hours[i] <= config.bucket_start_hours[i - 1]) {
      throw std::invalid_argument(
          "TimeConditionedPairModel::Learn: bucket starts must ascend");
    }
  }

  TimeConditionedPairModel model;
  model.config_ = config;

  // Split the history by bucket; a NaN separator marks every point where
  // the bucket's stream was interrupted (PairModel::Learn treats NaN as
  // a sequence break, so segments never stitch across days).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::size_t buckets = config.bucket_start_hours.size();
  std::vector<std::vector<double>> bx(buckets), by(buckets);
  std::size_t prev_bucket = buckets;  // sentinel
  for (std::size_t t = 0; t < x.size(); ++t) {
    const std::size_t b = model.BucketOf(times[t]);
    if (b != prev_bucket && !bx[b].empty()) {
      bx[b].push_back(nan);
      by[b].push_back(nan);
    }
    bx[b].push_back(x[t]);
    by[b].push_back(y[t]);
    prev_bucket = b;
  }

  for (std::size_t b = 0; b < buckets; ++b) {
    if (bx[b].empty()) {
      throw std::invalid_argument(
          "TimeConditionedPairModel::Learn: a bucket received no history"
          " samples");
    }
    model.models_.push_back(PairModel::Learn(bx[b], by[b], config.model));
    model.models_.back().ResetSequence();
  }
  return model;
}

StepOutcome TimeConditionedPairModel::Step(double x, double y, TimePoint tp) {
  const std::size_t bucket = BucketOf(tp);
  if (bucket != last_bucket_) {
    // Entering a new regime: its model's last observation (if any) is
    // from a previous visit — not this sample's predecessor.
    models_[bucket].ResetSequence();
    last_bucket_ = bucket;
  }
  return models_[bucket].Step(x, y);
}

}  // namespace pmcorr
