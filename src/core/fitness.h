// Fitness scores (Section 5) — the paper's three-level indicator of how
// well the models explain the monitoring data.
//
// Level 1, Q^{a,b}: rank the destination cells of row c_i by probability;
// an observation landing in the rank-π cell of an s-cell grid scores
//   Q = 1 - (π - 1) / s,
// so the modal cell scores 1 and an out-of-grid outlier scores 0.
// Level 2, Q^a: mean of Q^{a,b} over the l-1 partner measurements.
// Level 3, Q: mean of Q^a over all measurements.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace pmcorr {

/// Level-1 fitness from a 1-based rank within `cells` grid cells.
double RankFitness(std::size_t rank, std::size_t cells);

/// Mean of the engaged (non-nullopt) scores — the paper's aggregation for
/// both Q^a (over partner models) and Q (over measurements). Returns
/// nullopt when no score is engaged (e.g. the very first sample).
std::optional<double> AggregateScores(
    std::span<const std::optional<double>> scores);

/// Convenience overload for dense score vectors.
double AggregateScores(std::span<const double> scores);

/// Running mean of scores over a stream; used for the "average fitness
/// score" reported in Figure 13(a).
class ScoreAverager {
 public:
  void Add(double score);
  void Add(std::optional<double> score);

  std::size_t Count() const { return count_; }
  /// Sum of added scores (exposed for checkpointing).
  double Sum() const { return sum_; }
  /// Mean of added scores; 0 when empty.
  double Mean() const;

  /// Rebuilds an averager from checkpointed state.
  static ScoreAverager FromState(double sum, std::size_t count);

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace pmcorr
