// The transition probability matrix V (Sections 3 and 4.2).
//
// Row i of V is a discrete distribution P(c_i -> c_j) over all s cells.
// The posterior of Eq. (1) factors as prior x likelihood; we store the
// two factors separately in log space:
//
//   log V_ij  ∝  prior_logw[i][j] + evidence[i][j]
//
// where prior_logw is the kernel-shaped prior (Section 4.2 "Prior
// Distribution") and evidence accumulates the Eq. (2) likelihood terms —
// the additive log-space updates the paper describes. Keeping the factors
// apart has two benefits: exponential forgetting shrinks *evidence*
// toward zero (i.e. the posterior decays toward the prior, not toward a
// uniform distribution), and grid extensions can rebuild the prior for
// the grown grid while merely remapping the evidence.
//
// Alongside the posterior we keep raw empirical transition counts; they
// power the locality statistics (Section 4.2's 701/412/280 analysis) and
// the Figure 9/10 prior-vs-posterior demonstration.
//
// Hot-path layout (see docs/kernels.md for the full contract):
//  * All kernel evaluations go through a KernelStencil — a
//    (2r-1) x (2c-1) log-weight table built once per grid shape — so
//    Prior and ApplyExtension's backfill are contiguous table reads /
//    fused multiply-adds over row-major slices, with no virtual
//    dispatch or index->coordinate division in the inner loops.
//  * The Eq. (2) likelihood vector for an observed destination d is the
//    kernel centered at d — which is, bitwise, prior row d (Prior
//    copies the same stencil slices). ObserveTransition and the batch
//    ReplayTransitions therefore update a row with one flat s-element
//    sweep over two contiguous arrays (evidence row + prior row), with
//    no per-grid-row slice arithmetic at all.
//  * Scoring reads are served by per-row caches (row max, sum of
//    exponentials, and lazily a sorted copy for rank queries),
//    invalidated whenever the row's evidence changes. The cached values
//    are the *same* doubles the uncached scans produce, in the same
//    order, so results are bitwise identical with or without the cache.
//  * The caches make const query methods non-reentrant: a
//    TransitionMatrix must be confined to one thread at a time. The
//    pair-sharded engine guarantees this (each pair model, and
//    therefore each matrix, is owned by exactly one shard).
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "grid/grid.h"
#include "grid/kernels.h"

namespace pmcorr {

/// One observed cell-to-cell transition in a compiled history sequence
/// (see PairModel::Learn and TransitionMatrix::ReplayTransitions).
struct Transition {
  std::uint32_t from = 0;
  std::uint32_t to = 0;

  friend constexpr bool operator==(Transition, Transition) = default;
};

/// Optional fork/join hook for batch operations that decompose into
/// independent tasks: invoked as runner(count, fn), it must call fn(i)
/// exactly once for every i in [0, count) and return only after all
/// calls completed (any schedule, any threads). An empty runner means a
/// plain serial loop. ThreadPool::ParallelFor satisfies this contract —
/// the engine wraps it in a lambda so core stays free of a thread-pool
/// dependency.
using ParallelRunner =
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

/// Result of the fused scoring scan over one matrix row: the normalized
/// transition probability and the paper's 1-based rank, computed in a
/// single pass (plus cache reuse on repeated reads of an unchanged row).
struct TransitionScore {
  double probability = 0.0;
  std::size_t rank = 0;
};

class TransitionMatrix {
 public:
  TransitionMatrix() = default;

  /// Builds the prior V for `grid`: row i is the normalized kernel
  /// centered at cell i; evidence starts at zero.
  static TransitionMatrix Prior(const Grid2D& grid, const DecayKernel& kernel);

  std::size_t CellCount() const { return cells_; }

  /// Normalized P(c_from -> c_to) under the current posterior.
  /// Returns 0 on an empty (default-constructed) matrix.
  double Probability(std::size_t from, std::size_t to) const;

  /// Probability and rank of (from, to) computed together — one fused
  /// row scan instead of the separate Probability + RankOf passes, and
  /// O(log s) when row `from` has not been written since its caches
  /// were filled (alarmed transitions never update the model, so hot
  /// rows are rescored often). Bitwise identical to calling
  /// Probability() and RankOf() back-to-back. Returns {0, 0} on an
  /// empty matrix.
  TransitionScore ScoreTransition(std::size_t from, std::size_t to) const;

  /// The full normalized row distribution of `from`; empty on an empty
  /// matrix.
  std::vector<double> RowDistribution(std::size_t from) const;

  /// Applies one observed transition from `from` into `observed` (Eq. 2):
  /// first scales row `from`'s accumulated evidence by `forgetting`, then
  /// adds weight * LogWeight(d(observed, c_j)) to every entry.
  void ObserveTransition(std::size_t from, std::size_t observed,
                         const Grid2D& grid, const DecayKernel& kernel,
                         double weight = 1.0, double forgetting = 1.0);

  /// The pre-replay-pipeline form of ObserveTransition, retained
  /// verbatim: walks the kernel stencil one grid-row slice at a time and
  /// applies the unspecialized Eq. (2) update e = e * forgetting +
  /// weight * lw to every entry. Produces bitwise-identical matrices to
  /// ObserveTransition (the flat sweep reads prior row `observed`, which
  /// holds the same stencil bits), but through an independent code path —
  /// which is exactly why it stays: it is the oracle the Learn
  /// differential tests pin ReplayTransitions against, and the faithful
  /// "A" side of the model-building benchmark.
  void ObserveTransitionStencil(std::size_t from, std::size_t observed,
                                const Grid2D& grid, const DecayKernel& kernel,
                                double weight = 1.0, double forgetting = 1.0);

  /// Batch form of ObserveTransition for history replay: bitwise
  /// identical to calling ObserveTransition(t.from, t.to, ...) for every
  /// element of `transitions` in order, but bucketed by source row
  /// first. Row updates touch disjoint evidence/count memory, so
  /// replaying each bucket in its original arrival order reproduces the
  /// sequential result exactly (the docs/kernels.md arithmetic-order
  /// contract) while keeping each row cache-resident — and making the
  /// buckets independently schedulable: pass `runner` (e.g. a
  /// ThreadPool::ParallelFor wrapper) to replay rows in parallel.
  void ReplayTransitions(std::span<const Transition> transitions,
                         double weight = 1.0, double forgetting = 1.0,
                         const ParallelRunner& runner = {});

  /// The paper's ranking function π over row `from`: rank 1 is the most
  /// probable destination. Ties break toward the lower cell index, making
  /// ranks deterministic. Returns a 1-based rank in [1, s], or 0 on an
  /// empty matrix.
  std::size_t RankOf(std::size_t from, std::size_t to) const;

  /// Cell index with the highest probability in row `from` (0 on an
  /// empty matrix).
  std::size_t ArgMax(std::size_t from) const;

  /// Total observed (empirical) transitions recorded.
  std::uint64_t ObservedCount() const { return observed_; }

  /// Raw empirical count for (from, to).
  std::uint64_t CountOf(std::size_t from, std::size_t to) const;

  /// Grows the matrix after a grid extension: the prior is rebuilt for
  /// `new_grid`, and evidence/counts move to their remapped indices. For
  /// an existing row, a brand-new column cannot start at zero evidence —
  /// accumulated evidence is negative, so a zero entry would instantly
  /// make the new (never-visited) cell the row's most probable
  /// destination. Instead the new column's evidence is reconstructed
  /// from the row's empirical counts, i.e. what Eq. (2) would have
  /// accumulated had the cell existed all along (exact for
  /// forgetting == 1, a close approximation otherwise).
  /// `new_grid` is the grid *after* the extension, `old_cols` the column
  /// count before it and `likelihood_weight` the Eq. (2) scale in use.
  void ApplyExtension(const GridExtension& ext, std::size_t old_cols,
                      const Grid2D& new_grid, const DecayKernel& kernel,
                      double likelihood_weight = 1.0);

  /// Accumulated evidence (row-major, s*s) — exposed for serialization.
  const std::vector<double>& Evidence() const { return evidence_; }
  /// Empirical counts (row-major, s*s) — exposed for serialization.
  const std::vector<std::uint32_t>& Counts() const { return counts_; }
  /// Restores evidence/counts saved earlier; the prior must already have
  /// been rebuilt via Prior() on the same grid.
  void RestoreState(std::vector<double> evidence,
                    std::vector<std::uint32_t> counts,
                    std::uint64_t observed);

  /// Grid shape the matrix was built for (rows * cols == CellCount()).
  std::size_t GridRows() const { return rows_; }
  std::size_t GridCols() const { return cols_; }

  /// The prior's kernel log weight for (from, to) — exposed for tests
  /// and serialization round-trip checks.
  double PriorLogW(std::size_t from, std::size_t to) const {
    return prior_logw_[from * cells_ + to];
  }

  /// The precomputed log-weight table in use (empty on a
  /// default-constructed matrix).
  const KernelStencil& Stencil() const { return stencil_; }

  /// Audits the matrix invariants the paper's math and the PR-2/PR-3
  /// caches rely on:
  ///  * shape agreement — rows * cols == cells, all arrays sized s*s,
  ///    stencil built for exactly this shape (and internally valid);
  ///  * the prior is the stencil — prior row i equals the kernel table
  ///    centered at cell i, bitwise;
  ///  * evidence stays finite and non-positive (Eq. 2 accumulates
  ///    weight * log-weights <= 0 under forgetting in (0, 1]);
  ///  * every row is a probability distribution — the normalized row
  ///    sums to 1 within 1e-9;
  ///  * cache coherence — cached (max, sum-exp) row stats equal a
  ///    recomputation in the original scan order bitwise; a sorted rank
  ///    index is a permutation of [0, s), ordered (desc weight, asc
  ///    index), whose keys match the live posterior bitwise;
  ///  * counts_ sums to ObservedCount().
  /// O(s^2) — called from audit-build boundaries and tests, not from
  /// production hot paths.
  void CheckInvariants() const;

 private:
  friend struct InvariantTestPeer;
  // Per-row scoring cache. `max_logw`/`sum_exp` mirror the two scans of
  // the normalization (filled on first score after a row write);
  // `sorted` is the row's posterior log weights ordered (desc weight,
  // asc index) for O(log s) rank queries, built lazily on the second
  // score of an unchanged row — rows that are written every step never
  // pay for the sort.
  struct RowCache {
    bool stats_valid = false;
    bool sorted_valid = false;
    double max_logw = 0.0;
    double sum_exp = 0.0;
    std::vector<std::pair<double, std::uint32_t>> sorted;
  };

  double PosteriorLogW(std::size_t from, std::size_t to) const {
    return prior_logw_[from * cells_ + to] + evidence_[from * cells_ + to];
  }

  /// The shared Eq. (2) row update (evidence sweep + count bump) of
  /// ObserveTransition and ReplayTransitions; does not touch observed_
  /// or the row cache. The kernel log weights centered at `observed`
  /// are, bitwise, prior row `observed` (Prior copied the very same
  /// stencil slices), so the update is one flat sweep over two
  /// contiguous s-element arrays. The weight/forgetting == 1.0
  /// specializations drop the respective multiply; x * 1.0 == x and
  /// 1.0 * y == y exactly in IEEE arithmetic, so every branch produces
  /// identical bits (the golden traces pin that). Defined inline so the
  /// per-transition replay loop keeps the branch selection and the
  /// member-pointer loads out of the hot path (they are loop-invariant
  /// once inlined).
  void UpdateRowEvidence(std::size_t from, std::size_t observed,
                         double weight, double forgetting) {
    double* e = evidence_.data() + from * cells_;
    const double* p = prior_logw_.data() + observed * cells_;
    if (forgetting == 1.0) {
      if (weight == 1.0) {
        for (std::size_t c = 0; c < cells_; ++c) e[c] += p[c];
      } else {
        for (std::size_t c = 0; c < cells_; ++c) e[c] += weight * p[c];
      }
    } else {
      for (std::size_t c = 0; c < cells_; ++c) {
        e[c] = e[c] * forgetting + weight * p[c];
      }
    }
    ++counts_[from * cells_ + observed];
  }

  /// Fills (if stale) and returns row `from`'s (max, sum-exp) cache,
  /// scanning in exactly the order the uncached code used.
  const RowCache& RowStats(std::size_t from) const;

  /// Builds row `from`'s sorted cache (stats must already be valid).
  void BuildSorted(std::size_t from) const;

  /// Rank of `to` in row `from` given the target log weight, via the
  /// sorted cache when valid, else a linear scan.
  std::size_t RankInRow(std::size_t from, std::size_t to,
                        double target) const;

  void InvalidateRow(std::size_t from) {
    RowCache& rc = cache_[from];
    rc.stats_valid = false;
    rc.sorted_valid = false;
  }

  std::size_t cells_ = 0;
  std::size_t rows_ = 0;               // grid rows (r)
  std::size_t cols_ = 0;               // grid cols (c)
  KernelStencil stencil_;              // (2r-1) x (2c-1) log weights
  std::vector<double> prior_logw_;     // s*s kernel log weights
  std::vector<double> evidence_;       // s*s accumulated log likelihood
  std::vector<std::uint32_t> counts_;  // s*s empirical transition counts
  std::uint64_t observed_ = 0;
  mutable std::vector<RowCache> cache_;  // one per row, thread-confined
};

/// Locality histogram of observed transitions: entry d is the number of
/// transitions whose source/destination Chebyshev distance equals d
/// (entry 0 = "stayed in the same cell"). Reproduces Section 4.2's
/// 701-transition analysis.
std::vector<std::uint64_t> TransitionDistanceHistogram(
    const TransitionMatrix& matrix, const Grid2D& grid);

}  // namespace pmcorr
