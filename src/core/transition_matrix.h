// The transition probability matrix V (Sections 3 and 4.2).
//
// Row i of V is a discrete distribution P(c_i -> c_j) over all s cells.
// The posterior of Eq. (1) factors as prior x likelihood; we store the
// two factors separately in log space:
//
//   log V_ij  ∝  prior_logw[i][j] + evidence[i][j]
//
// where prior_logw is the kernel-shaped prior (Section 4.2 "Prior
// Distribution") and evidence accumulates the Eq. (2) likelihood terms —
// the additive log-space updates the paper describes. Keeping the factors
// apart has two benefits: exponential forgetting shrinks *evidence*
// toward zero (i.e. the posterior decays toward the prior, not toward a
// uniform distribution), and grid extensions can rebuild the prior for
// the grown grid while merely remapping the evidence.
//
// Alongside the posterior we keep raw empirical transition counts; they
// power the locality statistics (Section 4.2's 701/412/280 analysis) and
// the Figure 9/10 prior-vs-posterior demonstration.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "grid/grid.h"
#include "grid/kernels.h"

namespace pmcorr {

class TransitionMatrix {
 public:
  TransitionMatrix() = default;

  /// Builds the prior V for `grid`: row i is the normalized kernel
  /// centered at cell i; evidence starts at zero.
  static TransitionMatrix Prior(const Grid2D& grid, const DecayKernel& kernel);

  std::size_t CellCount() const { return cells_; }

  /// Normalized P(c_from -> c_to) under the current posterior.
  double Probability(std::size_t from, std::size_t to) const;

  /// The full normalized row distribution of `from`.
  std::vector<double> RowDistribution(std::size_t from) const;

  /// Applies one observed transition from `from` into `observed` (Eq. 2):
  /// first scales row `from`'s accumulated evidence by `forgetting`, then
  /// adds weight * LogWeight(d(observed, c_j)) to every entry.
  void ObserveTransition(std::size_t from, std::size_t observed,
                         const Grid2D& grid, const DecayKernel& kernel,
                         double weight = 1.0, double forgetting = 1.0);

  /// The paper's ranking function π over row `from`: rank 1 is the most
  /// probable destination. Ties break toward the lower cell index, making
  /// ranks deterministic. Returns a 1-based rank in [1, s].
  std::size_t RankOf(std::size_t from, std::size_t to) const;

  /// Cell index with the highest probability in row `from`.
  std::size_t ArgMax(std::size_t from) const;

  /// Total observed (empirical) transitions recorded.
  std::uint64_t ObservedCount() const { return observed_; }

  /// Raw empirical count for (from, to).
  std::uint64_t CountOf(std::size_t from, std::size_t to) const;

  /// Grows the matrix after a grid extension: the prior is rebuilt for
  /// `new_grid`, and evidence/counts move to their remapped indices. For
  /// an existing row, a brand-new column cannot start at zero evidence —
  /// accumulated evidence is negative, so a zero entry would instantly
  /// make the new (never-visited) cell the row's most probable
  /// destination. Instead the new column's evidence is reconstructed
  /// from the row's empirical counts, i.e. what Eq. (2) would have
  /// accumulated had the cell existed all along (exact for
  /// forgetting == 1, a close approximation otherwise).
  /// `new_grid` is the grid *after* the extension, `old_cols` the column
  /// count before it and `likelihood_weight` the Eq. (2) scale in use.
  void ApplyExtension(const GridExtension& ext, std::size_t old_cols,
                      const Grid2D& new_grid, const DecayKernel& kernel,
                      double likelihood_weight = 1.0);

  /// Accumulated evidence (row-major, s*s) — exposed for serialization.
  const std::vector<double>& Evidence() const { return evidence_; }
  /// Empirical counts (row-major, s*s) — exposed for serialization.
  const std::vector<std::uint32_t>& Counts() const { return counts_; }
  /// Restores evidence/counts saved earlier; the prior must already have
  /// been rebuilt via Prior() on the same grid.
  void RestoreState(std::vector<double> evidence,
                    std::vector<std::uint32_t> counts,
                    std::uint64_t observed);

 private:
  double PosteriorLogW(std::size_t from, std::size_t to) const {
    return prior_logw_[from * cells_ + to] + evidence_[from * cells_ + to];
  }

  std::size_t cells_ = 0;
  std::vector<double> prior_logw_;     // s*s kernel log weights
  std::vector<double> evidence_;       // s*s accumulated log likelihood
  std::vector<std::uint32_t> counts_;  // s*s empirical transition counts
  std::uint64_t observed_ = 0;
};

/// Locality histogram of observed transitions: entry d is the number of
/// transitions whose source/destination Chebyshev distance equals d
/// (entry 0 = "stayed in the same cell"). Reproduces Section 4.2's
/// 701-transition analysis.
std::vector<std::uint64_t> TransitionDistanceHistogram(
    const TransitionMatrix& matrix, const Grid2D& grid);

}  // namespace pmcorr
