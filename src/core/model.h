// PairModel — the paper's correlation model M = (G, V) for one pair of
// measurements, with the full online loop of Figure 6: observe, score,
// alarm, and (when adaptive) update the grid and matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "core/config.h"
#include "core/transition_matrix.h"
#include "grid/grid.h"
#include "grid/kernels.h"

namespace pmcorr {

/// Everything the model reports about one online observation x_{t+1}.
struct StepOutcome {
  /// True when a fitness score applies to this observation. The first
  /// sample of a stream, and any sample following an out-of-grid outlier,
  /// have no incoming transition to score.
  bool has_score = false;

  /// Q^{a,b}_{t+1} in [0, 1]; 0 for outliers.
  double fitness = 0.0;

  /// P(x_t -> x_{t+1}) from the current posterior; 0 for outliers.
  double probability = 0.0;

  /// 1-based rank of the observed destination cell (0 when not scored).
  std::size_t rank = 0;

  /// The observation fell outside the grid farther than the lambda *
  /// r_avg extension margin.
  bool outlier = false;

  /// The observation was missing (NaN/Inf in either coordinate, e.g. a
  /// collector gap). Missing samples are never scored, never alarmed and
  /// never update the model; they break the transition sequence like a
  /// time gap would.
  bool missing = false;

  /// The grid boundary was grown to admit this observation.
  bool extended_grid = false;

  /// An alarm fired (probability below delta, fitness below the fitness
  /// threshold, or outlier while any alarm threshold is configured).
  bool alarm = false;

  /// Cell containing the observation (after any extension); nullopt for
  /// outliers.
  std::optional<std::size_t> cell;
};

/// Lifetime counters for reports and tests.
struct PairModelStats {
  std::uint64_t steps = 0;
  std::uint64_t scored = 0;
  std::uint64_t alarms = 0;
  std::uint64_t outliers = 0;
  std::uint64_t extensions = 0;
  std::uint64_t matrix_updates = 0;
};

/// The pair-wise transition probability model. Copyable (the kernel is
/// shared, everything else is a value) so engines can store models in
/// plain containers.
class PairModel {
 public:
  PairModel() = default;

  /// Initializes M = (G, V) from history data: builds the adaptive grid
  /// from the two value vectors (equal, non-zero length), sets the
  /// kernel-shaped prior and replays the history transitions through the
  /// Bayesian update. This is the "Learn" box of Figure 6.
  ///
  /// Compile-then-replay pipeline (see docs/model.md "Learn pipeline"):
  /// one pass maps the history to a cell-index transition sequence
  /// (hinted interval lookups exploit the paper's transition locality),
  /// then TransitionMatrix::ReplayTransitions replays the sequence
  /// bucketed by source row — bitwise identical to LearnSequential, and
  /// parallelizable within the pair via `runner` (empty = serial).
  static PairModel Learn(std::span<const double> x, std::span<const double> y,
                         const ModelConfig& config,
                         const ParallelRunner& runner = {});

  /// The pre-pipeline reference implementation: walks the history and
  /// feeds ObserveTransition one sample at a time. Kept as the oracle
  /// for the Learn differential tests and the model-building benchmark
  /// A/B; produces bit-identical models to Learn.
  static PairModel LearnSequential(std::span<const double> x,
                                   std::span<const double> y,
                                   const ModelConfig& config);

  /// Processes one online observation (the "Data -> model" loop of
  /// Figure 6): locates the cell (growing the boundary when the point is
  /// just outside and the model is adaptive), scores the transition,
  /// raises alarms, and — when adaptive and not alarmed — updates V.
  StepOutcome Step(double x, double y);

  /// Forgets the previous observation so the next Step starts a fresh
  /// transition sequence (use when jumping across a time gap).
  void ResetSequence() { prev_cell_.reset(); }

  /// Arms (or disarms, with zeros) the alarm bounds — used by per-pair
  /// threshold calibration (core/calibration.h).
  void SetAlarmThresholds(double fitness_threshold, double delta) {
    config_.fitness_alarm_threshold = fitness_threshold;
    config_.delta = delta;
  }

  const Grid2D& Grid() const { return grid_; }
  const TransitionMatrix& Matrix() const { return matrix_; }
  const ModelConfig& Config() const { return config_; }
  const DecayKernel& Kernel() const { return *kernel_; }
  const PairModelStats& Stats() const { return stats_; }

  /// Cell of the previous in-grid observation, if any.
  std::optional<std::size_t> PreviousCell() const { return prev_cell_; }

  /// Rebuilds internals from serialized parts (used by io/model_io).
  static PairModel FromParts(ModelConfig config, Grid2D grid,
                             TransitionMatrix matrix);

  /// Audits the whole model M = (G, V): grid and matrix invariants,
  /// grid/matrix shape agreement, the stencil matching this model's
  /// kernel bitwise, a sane configuration (forgetting in (0, 1],
  /// positive likelihood weight, non-negative thresholds and margins),
  /// and prev_cell_ inside the grid. A default-constructed model is
  /// valid. Called automatically post-Learn, post-Step and
  /// post-deserialize in audit builds (-DPMCORR_AUDIT=ON) and directly
  /// by tests in any build.
  void CheckInvariants() const;

 private:
  friend struct InvariantTestPeer;
  /// Shared front half of Learn/LearnSequential: history validation, gap
  /// filtering, grid + kernel + prior construction. Sets `gap_free` when
  /// both inputs were entirely finite — Learn's compile loop then takes
  /// a branch-light path (every adjacent sample pair is a transition,
  /// and no sample can fall outside a grid spanning the history's own
  /// min/max plus padding).
  static PairModel InitFromHistory(std::span<const double> x,
                                   std::span<const double> y,
                                   const ModelConfig& config, bool& gap_free);

  ModelConfig config_;
  std::shared_ptr<const DecayKernel> kernel_;
  Grid2D grid_;
  TransitionMatrix matrix_;
  std::optional<std::size_t> prev_cell_;
  PairModelStats stats_;
};

}  // namespace pmcorr
