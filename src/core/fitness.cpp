#include "core/fitness.h"

#include "common/check.h"


namespace pmcorr {

double RankFitness(std::size_t rank, std::size_t cells) {
  PMCORR_DASSERT(cells > 0);
  PMCORR_DASSERT(rank >= 1 && rank <= cells);
  return 1.0 - static_cast<double>(rank - 1) / static_cast<double>(cells);
}

std::optional<double> AggregateScores(
    std::span<const std::optional<double>> scores) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : scores) {
    if (s) {
      sum += *s;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

double AggregateScores(std::span<const double> scores) {
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

void ScoreAverager::Add(double score) {
  sum_ += score;
  ++count_;
}

void ScoreAverager::Add(std::optional<double> score) {
  if (score) Add(*score);
}

double ScoreAverager::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

ScoreAverager ScoreAverager::FromState(double sum, std::size_t count) {
  ScoreAverager avg;
  avg.sum_ = sum;
  avg.count_ = count;
  return avg;
}

}  // namespace pmcorr
