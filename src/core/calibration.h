// Alarm-threshold calibration.
//
// The paper leaves δ (the transition-probability alarm bound of Figure 6)
// and the fitness bound as operator-chosen constants. Useful values
// depend on the grid size and the pair's predictability, so this module
// derives them from data: replay a held-out slice of normal history
// through a frozen copy of the model and place each threshold at the
// quantile matching a target false-positive rate.
#pragma once

#include <cstddef>
#include <span>

#include "core/model.h"

namespace pmcorr {

/// Calibrated alarm bounds for one pair model.
struct ThresholdCalibration {
  /// Alarm when Q^{a,b} falls below this (0 when calibration had no
  /// scored samples).
  double fitness_threshold = 0.0;
  /// δ: alarm when P(x_t -> x_{t+1}) falls below this.
  double delta = 0.0;
  /// Scored holdout samples the quantiles were computed from.
  std::size_t samples = 0;
};

/// Replays (x, y) — assumed *normal* data, e.g. a held-out slice of the
/// training period — through a frozen (non-adaptive) copy of `model` and
/// returns the `target_false_positive_rate` quantile of the observed
/// fitness scores and transition probabilities. Out-of-grid outliers in
/// the holdout count as score 0 (they would alarm at any threshold).
ThresholdCalibration CalibrateOnHoldout(const PairModel& model,
                                        std::span<const double> x,
                                        std::span<const double> y,
                                        double target_false_positive_rate);

/// Convenience: returns a copy of `config` with the calibrated bounds
/// installed.
ModelConfig WithCalibratedThresholds(const ModelConfig& config,
                                     const ThresholdCalibration& calibration);

}  // namespace pmcorr
