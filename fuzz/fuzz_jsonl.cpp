// Fuzz target for the snapshot-stream JSONL parser, with a round-trip
// oracle: whatever the strict parser accepts must re-serialize and
// re-parse to the identical snapshot stream (the writer and reader pin
// each other down — %.17g printing and from_chars parsing are inverse
// bijections on finite doubles).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/monitor_io.h"

namespace {

bool Same(const pmcorr::SystemSnapshot& a, const pmcorr::SystemSnapshot& b) {
  return a.sample == b.sample && a.time == b.time &&
         a.system_score == b.system_score &&
         a.pair_scores == b.pair_scores &&
         a.measurement_scores == b.measurement_scores &&
         a.alarmed_pairs == b.alarmed_pairs &&
         a.outlier_pairs == b.outlier_pairs &&
         a.extended_pairs == b.extended_pairs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::vector<pmcorr::SystemSnapshot> snapshots;
  try {
    std::istringstream in(text);
    snapshots = pmcorr::ReadSnapshotStreamJsonl(in);
  } catch (const std::runtime_error&) {
    return 0;
  }
  std::stringstream round;
  pmcorr::WriteSnapshotStreamJsonl(snapshots, round);
  const std::vector<pmcorr::SystemSnapshot> reloaded =
      pmcorr::ReadSnapshotStreamJsonl(round);  // must not throw
  if (reloaded.size() != snapshots.size()) std::abort();
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (!Same(reloaded[i], snapshots[i])) std::abort();
  }
  return 0;
}
