// Fuzz target for the length-prefixed CRC framing layer and the two
// protocols that ride on it. Three oracles:
//
//   * Chunking invariance — a one-shot feed and a 7-byte drip feed of
//     the same bytes must produce the identical frame sequence, and
//     throw (or not) identically; the incremental parser has no
//     arrival-order behavior.
//   * Delta round trip — any payload the strict SystemDelta decoder
//     accepts must re-encode and re-decode to the same bytes, and any
//     stream ReadDeltaStreamBinary accepts must survive a full
//     write/read cycle with every delta bitwise intact.
//   * Serve messages — every protocol decoder either throws
//     FramingError or yields a message whose re-encoding decodes again;
//     nothing crashes, nothing reads out of bounds.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/delta_binary.h"
#include "io/framing.h"
#include "serve/protocol.h"

namespace {

using pmcorr::Frame;
using pmcorr::FrameReader;
using pmcorr::FramingError;

void CheckDeltaPayload(const std::string& payload) {
  pmcorr::SystemDelta delta;
  try {
    delta = pmcorr::DecodeSystemDelta(payload);
  } catch (const FramingError&) {
    return;
  }
  std::string once;
  pmcorr::EncodeSystemDelta(delta, once);
  std::string twice;
  pmcorr::EncodeSystemDelta(pmcorr::DecodeSystemDelta(once), twice);
  if (once != twice) std::abort();
}

void CheckServeFrame(const Frame& frame) {
  try {
    switch (frame.type) {
      case pmcorr::kFrameHello: {
        const pmcorr::HelloRequest msg =
            pmcorr::DecodeHelloRequest(frame.payload);
        std::string out;
        pmcorr::EncodeHelloRequest(msg, out);
        pmcorr::DecodeHelloRequest(out);  // must not throw
        break;
      }
      case pmcorr::kFrameSample: {
        pmcorr::SampleRow row;
        pmcorr::DecodeSampleRowInto(frame.payload, row);
        break;
      }
      case pmcorr::kFrameQuery: {
        const pmcorr::QueryRequest msg =
            pmcorr::DecodeQueryRequest(frame.payload);
        std::string out;
        pmcorr::EncodeQueryRequest(msg, out);
        pmcorr::DecodeQueryRequest(out);
        break;
      }
      case pmcorr::kFrameHelloOk:
        pmcorr::DecodeHelloReply(frame.payload);
        break;
      case pmcorr::kFrameStatus:
        pmcorr::DecodeStatusReply(frame.payload);
        break;
      case pmcorr::kFrameSummary:
        pmcorr::DecodeSummaryReply(frame.payload);
        break;
      case pmcorr::kFrameDrilldown:
        pmcorr::DecodeDrilldownReply(frame.payload);
        break;
      case pmcorr::kFrameBackpressure:
        pmcorr::DecodeBackpressureEvent(frame.payload);
        break;
      case pmcorr::kFrameDrained:
        pmcorr::DecodeDrainedReply(frame.payload);
        break;
      case pmcorr::kFrameError:
        pmcorr::DecodeErrorReply(frame.payload);
        break;
      default:
        break;
    }
  } catch (const FramingError&) {
    // Rejection is the expected outcome for hostile payloads.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  std::vector<Frame> whole;
  bool whole_threw = false;
  {
    FrameReader reader;
    reader.Feed(bytes);
    try {
      while (auto frame = reader.Next()) whole.push_back(std::move(*frame));
    } catch (const FramingError&) {
      whole_threw = true;
    }
  }

  std::vector<Frame> dripped;
  bool drip_threw = false;
  {
    FrameReader reader;
    const std::string_view view(bytes);
    try {
      for (std::size_t i = 0; i < view.size(); i += 7) {
        reader.Feed(view.substr(i, 7));
        while (auto frame = reader.Next()) {
          dripped.push_back(std::move(*frame));
        }
      }
    } catch (const FramingError&) {
      drip_threw = true;
    }
  }

  if (whole_threw != drip_threw) std::abort();
  if (whole.size() != dripped.size()) std::abort();
  for (std::size_t i = 0; i < whole.size(); ++i) {
    if (whole[i].type != dripped[i].type ||
        whole[i].payload != dripped[i].payload) {
      std::abort();
    }
  }

  for (const Frame& frame : whole) {
    if (frame.type == pmcorr::kDeltaStreamDelta) {
      CheckDeltaPayload(frame.payload);
    }
    CheckServeFrame(frame);
  }

  // The strict whole-stream reader: anything it accepts must survive a
  // full write/read cycle with every delta re-encoding bitwise.
  try {
    std::istringstream in(bytes);
    const std::vector<pmcorr::SystemDelta> deltas =
        pmcorr::ReadDeltaStreamBinary(in);
    std::stringstream round;
    pmcorr::WriteDeltaStreamBinary(deltas, round);
    const std::vector<pmcorr::SystemDelta> reloaded =
        pmcorr::ReadDeltaStreamBinary(round);
    if (reloaded.size() != deltas.size()) std::abort();
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      std::string a, b;
      pmcorr::EncodeSystemDelta(deltas[i], a);
      pmcorr::EncodeSystemDelta(reloaded[i], b);
      if (a != b) std::abort();
    }
  } catch (const std::runtime_error&) {
    // Truncated, corrupt, or simply not a delta stream.
  }

  return 0;
}
