// Fuzz target for the trace CSV parser. Contract: every byte stream
// either yields a well-formed MeasurementFrame or throws
// std::runtime_error — NaN cells are legal (missing-sample marker),
// infinities and overflowing timestamp headers are not.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    const pmcorr::MeasurementFrame frame = pmcorr::ReadFrameCsv(in);
    // Touch what a consumer would: the frame must be internally
    // consistent enough to walk.
    for (std::size_t t = 0; t < frame.SampleCount(); ++t) {
      (void)frame.TimeAt(t);
    }
  } catch (const std::runtime_error&) {
  }
  // The row-stream reader shares the value grammar but keeps timestamps
  // verbatim (duplicates and gaps are the ingest guard's business, not
  // the parser's) — same crash-free contract, different accept set.
  try {
    std::istringstream in(text);
    const pmcorr::SampleStream stream = pmcorr::ReadSampleStreamCsv(in);
    for (const pmcorr::SampleRow& row : stream.rows) {
      if (row.values.size() != stream.infos.size()) return 0;
    }
  } catch (const std::runtime_error&) {
  }
  return 0;
}
