// Driver for toolchains without libFuzzer (the repo's CI builds the
// real -fsanitize=fuzzer binaries with clang; GCC-only machines get
// this). Two modes:
//
//   fuzz_x seed1 [seed2 ...]            replay each file once
//   fuzz_x -mutate N seed1 [seed2 ...]  additionally run N deterministic
//                                       mutations of every seed
//
// The mutator is a fixed-seed xorshift over byte flips, truncations,
// duplications and digit swaps — deterministic, so a failure reproduces
// by rerunning the same command. Exit code 0 means every input was
// processed without crashing; the harness's own std::abort/sanitizer
// traps report failures exactly as libFuzzer would.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t g_state = 0x243f6a8885a308d3ULL;  // fixed: runs reproduce

std::uint64_t NextRand() {
  g_state ^= g_state << 13;
  g_state ^= g_state >> 7;
  g_state ^= g_state << 17;
  return g_state;
}

void RunOnce(const std::string& bytes) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

std::string Mutate(std::string bytes) {
  if (bytes.empty()) return bytes;
  const int edits = 1 + static_cast<int>(NextRand() % 4);
  for (int e = 0; e < edits; ++e) {
    const std::size_t pos = NextRand() % bytes.size();
    switch (NextRand() % 5) {
      case 0:  // bit flip
        bytes[pos] = static_cast<char>(bytes[pos] ^
                                       (1u << (NextRand() % 8)));
        break;
      case 1:  // random byte
        bytes[pos] = static_cast<char>(NextRand() % 256);
        break;
      case 2:  // truncate
        bytes.resize(pos);
        if (bytes.empty()) return bytes;
        break;
      case 3:  // duplicate a chunk in place
        bytes.insert(pos, bytes.substr(pos, 1 + NextRand() % 16));
        break;
      default:  // digit swap — numeric fields are where the bugs live
        bytes[pos] = static_cast<char>('0' + NextRand() % 10);
        break;
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  long mutations = 0;
  int arg = 1;
  if (arg + 1 < argc && std::strcmp(argv[arg], "-mutate") == 0) {
    mutations = std::strtol(argv[arg + 1], nullptr, 10);
    arg += 2;
  }
  if (arg >= argc) {
    std::fprintf(stderr, "usage: %s [-mutate N] corpus-file...\n", argv[0]);
    return 2;
  }
  long executed = 0;
  for (; arg < argc; ++arg) {
    std::ifstream in(argv[arg], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[arg]);
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    RunOnce(bytes);
    ++executed;
    for (long m = 0; m < mutations; ++m) {
      RunOnce(Mutate(bytes));
      ++executed;
    }
  }
  std::printf("%ld inputs OK\n", executed);
  return 0;
}
