// Fuzz target for the checkpoint text parsers: LoadPairModel and
// LoadSystemMonitor. Contract under fuzzing: any byte stream either
// loads or throws std::runtime_error — no crash, no sanitizer report,
// no giant allocation from attacker-declared sizes, and no CheckFailure
// (a load that passes validation must satisfy the model invariants, so
// run the harness with -DPMCORR_AUDIT=ON to make that bite).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/model_io.h"
#include "io/monitor_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    (void)pmcorr::LoadPairModel(in);
  } catch (const std::runtime_error&) {
    // Rejected input — the expected outcome for almost every mutation.
  }
  try {
    std::istringstream in(text);
    (void)pmcorr::LoadSystemMonitor(in, /*threads=*/1);
  } catch (const std::runtime_error&) {
  }
  return 0;
}
