// Fuzz target for the checkpoint text parsers: LoadPairModel and
// LoadSystemMonitor. Contract under fuzzing: any byte stream either
// loads or throws std::runtime_error — no crash, no sanitizer report,
// no giant allocation from attacker-declared sizes, and no CheckFailure
// (a load that passes validation must satisfy the model invariants, so
// run the harness with -DPMCORR_AUDIT=ON to make that bite).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "io/model_io.h"
#include "io/monitor_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    (void)pmcorr::LoadPairModel(in);
  } catch (const std::runtime_error&) {
    // Rejected input — the expected outcome for almost every mutation.
  }
  try {
    std::istringstream in(text);
    (void)pmcorr::LoadSystemMonitor(in, /*threads=*/1);
  } catch (const std::runtime_error&) {
  }
  // The CRC trailer verifier sees every checkpoint before the parser
  // does, so it gets the rawest input of all three: arbitrary bytes must
  // be passed through (no trailer), stripped (valid trailer), or
  // rejected with runtime_error — never misread as covering the wrong
  // span.
  try {
    const std::string_view body = pmcorr::VerifyCheckpointTrailer(text);
    if (body.size() > text.size()) return 0;  // unreachable; keeps body used
  } catch (const std::runtime_error&) {
  }
  return 0;
}
