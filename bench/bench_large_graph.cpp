// Shard-scale monitoring: drive SystemMonitor at 10k+ pairs and measure
// whether the per-sample cost stays linear in pair count (the tentpole
// claim of the scaling work — see docs/scaling.md). The bench builds a
// full-mesh pair graph over a generated telemetry trace, runs the
// batched engine, and records per-phase timings (sweep, alarm merge,
// snapshot assembly), delta-stream sizes against the full snapshot
// form, and peak RSS.
//
// Environment overrides (CI smoke runs a reduced config):
//   PMCORR_LARGE_GRAPH_PAIRS         target pair count (default 10000)
//   PMCORR_LARGE_GRAPH_TEST_SAMPLES  cap on monitored samples (default 240)
#include <sys/resource.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "engine/measurement_graph.h"
#include "engine/monitor.h"
#include "io/monitor_io.h"
#include "telemetry/generator.h"

namespace {

using namespace pmcorr;
using namespace pmcorr::bench;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  long long out = 0;
  if (!ParseInt64(value, &out) || out <= 0) return fallback;
  return static_cast<std::size_t>(out);
}

double PeakRssMib() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// First-m-measurements graph holding exactly `target` pairs (or the
// full mesh if the frame is too narrow to reach it).
MeasurementGraph MeshOfPairs(std::size_t measurements, std::size_t target,
                             std::size_t* used_measurements) {
  std::vector<PairId> pairs;
  pairs.reserve(target);
  std::size_t m = 0;
  for (std::size_t b = 1; b < measurements && pairs.size() < target; ++b) {
    for (std::size_t a = 0; a < b && pairs.size() < target; ++a) {
      pairs.emplace_back(MeasurementId(static_cast<std::int32_t>(a)),
                         MeasurementId(static_cast<std::int32_t>(b)));
      m = b + 1;
    }
  }
  *used_measurements = m;
  return MeasurementGraph::FromPairs(measurements, std::move(pairs));
}

struct RunCost {
  double run_s = 0.0;
  double per_pair_us = 0.0;  // per pair per sample
  RunStats stats;
};

RunCost TimeRun(SystemMonitor& monitor, const MeasurementFrame& test,
                std::size_t pairs) {
  Stopwatch clock;
  const auto snapshots = monitor.Run(test);
  RunCost cost;
  cost.run_s = clock.ElapsedSeconds();
  cost.per_pair_us = cost.run_s * 1e6 /
                     static_cast<double>(test.SampleCount()) /
                     static_cast<double>(pairs);
  cost.stats = monitor.LastRunStats();
  return cost;
}

std::size_t LineBytes(const std::vector<SystemDelta>& deltas,
                      std::size_t index) {
  std::ostringstream out;
  WriteDeltaStreamJsonl({deltas[index]}, out);
  return out.str().size();
}

}  // namespace

int main() {
  PrintSection(std::cout, "Large-graph monitoring — scale-linearity at 10k+"
                          " pairs");

  const std::size_t target_pairs = EnvSize("PMCORR_LARGE_GRAPH_PAIRS", 10000);
  const std::size_t test_cap = EnvSize("PMCORR_LARGE_GRAPH_TEST_SAMPLES", 240);

  // One trace feeds every configuration: ~60 machines yield enough
  // measurements for a 10k-pair mesh; 3 days at the 6-minute cadence
  // keeps Learn affordable across 10k models.
  ScenarioConfig config;
  config.machine_count = 60;
  config.trace_days = 3;
  const PaperScenario scenario = MakeGroupScenario('A', config);
  Stopwatch clock;
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const double gen_s = clock.ElapsedSeconds();

  const TimePoint split = frame.StartTime() + 2 * kDay;
  const MeasurementFrame train = frame.SliceByTime(frame.StartTime(), split);
  MeasurementFrame test =
      frame.SliceByTime(split, frame.TimeAt(frame.SampleCount()));
  if (test.SampleCount() > test_cap) {
    test = test.SliceByTime(test.StartTime(), test.TimeAt(test_cap));
  }
  std::cout << "trace: " << frame.MeasurementCount() << " measurements, "
            << train.SampleCount() << " train + " << test.SampleCount()
            << " test samples (generated in " << FormatDouble(gen_s, 2)
            << " s)\n";

  // Small grids on purpose: at 10k pairs the s^2 transition matrices
  // dominate memory, and the scaling claim is about the engine, not
  // about grid resolution.
  MonitorConfig engine;
  engine.model = DefaultModelConfig();
  engine.model.partition.units = 40;
  engine.model.partition.max_intervals = 6;

  std::size_t used_measurements = 0;
  const MeasurementGraph graph = MeshOfPairs(
      frame.MeasurementCount(), target_pairs, &used_measurements);
  std::cout << "graph: " << graph.PairCount() << " pairs over the first "
            << used_measurements << " measurements\n";

  clock.Reset();
  SystemMonitor monitor(train, graph, engine);
  const double train_s = clock.ElapsedSeconds();
  std::cout << "trained " << graph.PairCount() << " pair models in "
            << FormatDouble(train_s, 2) << " s ("
            << FormatDouble(train_s * 1e3 /
                                static_cast<double>(graph.PairCount()),
                            3)
            << " ms/model)\n";

  // Reference scale: a 193-pair mesh (the seed repo's fleet size) over
  // the same trace and config. Scale-linearity = the per-pair per-sample
  // cost at 10k pairs staying close to this.
  std::size_t ref_measurements = 0;
  const MeasurementGraph ref_graph =
      MeshOfPairs(frame.MeasurementCount(), 193, &ref_measurements);
  SystemMonitor ref_monitor(train, ref_graph, engine);

  const RunCost ref = TimeRun(ref_monitor, test, ref_graph.PairCount());
  const RunCost large = TimeRun(monitor, test, graph.PairCount());
  const double cost_ratio = large.per_pair_us / ref.per_pair_us;

  TextTable table;
  table.SetHeader({"fleet", "run", "per sample", "per pair+sample"});
  const auto row = [&](const char* name, std::size_t pairs,
                       const RunCost& cost) {
    table.Row()
        .Cell(name)
        .Cell(FormatDouble(cost.run_s, 3) + " s")
        .Cell(FormatDouble(cost.run_s * 1e3 /
                               static_cast<double>(test.SampleCount()),
                           3) +
              " ms")
        .Cell(FormatDouble(cost.per_pair_us, 3) + " us")
        .Done();
    (void)pairs;
  };
  row("reference (193 pairs)", ref_graph.PairCount(), ref);
  row("large graph", graph.PairCount(), large);
  table.Print(std::cout);
  std::cout << "per-pair cost ratio (large / reference): "
            << FormatDouble(cost_ratio, 3) << "  (scale-linear <= 1.5)\n";
  std::cout << "large-graph phases: sweep "
            << FormatDouble(large.stats.sweep_seconds, 3) << " s, alarm merge "
            << FormatDouble(large.stats.alarm_merge_seconds, 4)
            << " s, snapshot assembly "
            << FormatDouble(large.stats.assemble_seconds, 3) << " s across "
            << large.stats.batches << " batches\n";

  // Delta form vs full snapshots over the same test window. The monitor
  // restarts its sequences so the delta run begins at a baseline.
  monitor.ResetSequences();
  clock.Reset();
  const std::vector<SystemDelta> deltas = monitor.RunDelta(test);
  const double delta_run_s = clock.ElapsedSeconds();

  std::ostringstream full_stream;
  WriteSnapshotStreamJsonl(ReconstructSnapshots(deltas), full_stream);
  const std::size_t full_bytes = full_stream.str().size();
  std::ostringstream delta_stream;
  WriteDeltaStreamJsonl(deltas, delta_stream);
  const std::size_t delta_bytes = delta_stream.str().size();

  // Quiet ticks: a steady tail where every feed holds its value (with a
  // sub-cell wobble so the frozen-feed guard stays out of the way). Each
  // pair repeats the same cell transition, so its rank-quantized fitness
  // repeats bitwise and the delta carries nothing per pair — this is the
  // "few hundred bytes regardless of pair count" claim. The delta run
  // continues from the test window (no new baseline).
  MeasurementFrame quiet(test.TimeAt(test.SampleCount()), test.Period());
  for (const MeasurementInfo& info : test.Infos()) {
    const double last = test.Value(info.id, test.SampleCount() - 1);
    std::vector<double> steady(24, last);
    for (std::size_t t = 1; t < steady.size(); t += 2) {
      steady[t] = last + std::abs(last) * 1e-9 + 1e-300;
    }
    quiet.Add(info, TimeSeries(quiet.StartTime(), quiet.Period(),
                               std::move(steady)));
  }
  const std::vector<SystemDelta> quiet_deltas = monitor.RunDelta(quiet);
  std::size_t quiet_bytes = full_bytes;
  for (std::size_t i = 0; i < quiet_deltas.size(); ++i) {
    if (quiet_deltas[i].baseline) continue;
    quiet_bytes = std::min(quiet_bytes, LineBytes(quiet_deltas, i));
  }
  const double full_per_tick =
      static_cast<double>(full_bytes) / static_cast<double>(deltas.size());
  const double shrink_pct =
      100.0 * (1.0 - static_cast<double>(delta_bytes) /
                         static_cast<double>(full_bytes));
  const double quiet_shrink_pct =
      100.0 * (1.0 - static_cast<double>(quiet_bytes) / full_per_tick);
  std::cout << "snapshot stream: " << full_bytes / 1024 << " KiB full, "
            << delta_bytes / 1024 << " KiB delta ("
            << FormatDouble(shrink_pct, 1) << "% smaller); quietest tick "
            << quiet_bytes << " B vs " << FormatDouble(full_per_tick / 1024, 1)
            << " KiB full (" << FormatDouble(quiet_shrink_pct, 1)
            << "% smaller)\n";

  const double rss_mib = PeakRssMib();
  std::cout << "peak RSS: " << FormatDouble(rss_mib, 0) << " MiB\n";

  BenchJson json("large_graph");
  json.Set("pairs", static_cast<std::int64_t>(graph.PairCount()));
  json.Set("ref_pairs", static_cast<std::int64_t>(ref_graph.PairCount()));
  json.Set("measurements", static_cast<std::int64_t>(used_measurements));
  json.Set("train_samples", static_cast<std::int64_t>(train.SampleCount()));
  json.Set("test_samples", static_cast<std::int64_t>(test.SampleCount()));
  json.Set("train_s", train_s);
  json.Set("train_ms_per_model",
           train_s * 1e3 / static_cast<double>(graph.PairCount()));
  json.Set("run_s", large.run_s);
  json.Set("run_ms_per_sample",
           large.run_s * 1e3 / static_cast<double>(test.SampleCount()));
  json.Set("per_pair_us_per_sample", large.per_pair_us);
  json.Set("ref_run_s", ref.run_s);
  json.Set("ref_per_pair_us_per_sample", ref.per_pair_us);
  json.Set("per_pair_cost_ratio", cost_ratio);
  json.Set("sweep_s", large.stats.sweep_seconds);
  json.Set("alarm_merge_s", large.stats.alarm_merge_seconds);
  json.Set("assemble_s", large.stats.assemble_seconds);
  json.Set("batches", static_cast<std::int64_t>(large.stats.batches));
  json.Set("delta_run_s", delta_run_s);
  json.Set("full_stream_bytes", static_cast<std::int64_t>(full_bytes));
  json.Set("delta_stream_bytes", static_cast<std::int64_t>(delta_bytes));
  json.Set("quiet_tick_bytes", static_cast<std::int64_t>(quiet_bytes));
  json.Set("delta_shrink_pct", shrink_pct);
  json.Set("quiet_tick_shrink_pct", quiet_shrink_pct);
  json.Set("peak_rss_mib", rss_mib);
  const std::string json_path = json.Write();
  if (!json_path.empty()) std::cout << "wrote " << json_path << "\n";

  std::cout << "\nThe post-sweep phase (alarm merge + snapshot assembly) is"
               " sharded and\nallocation-free on the steady path; the delta"
               " form keeps a quiet tick O(1)\nbytes no matter how many pairs"
               " the fleet carries.\n";
  return 0;
}
