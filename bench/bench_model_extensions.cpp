// Ablations of the two model extensions built on top of the paper:
//
//  1. Time-of-day conditioning — one (G, V) per day bucket. Helps when
//     the *same* cells have time-dependent dynamics (a flapping
//     daytime-only load balancer over the night walk's range); is
//     neutral when regimes occupy disjoint cells, because the order-1
//     model is already regime-aware through its state.
//  2. Rolling re-initialization — rebuild M from a sliding window on a
//     cadence. Under strong month-scale drift a frozen model goes
//     *silent* (the tail leaves its grid: outliers, then unscorable
//     samples); rolling rebuilds keep full scoring coverage.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/fitness.h"
#include "core/time_conditioned.h"
#include "engine/retrainer.h"

namespace {

using namespace pmcorr;
using namespace pmcorr::bench;

// Night: slow random walk over [42, 80]. Day: flapping between 50 and 74
// every sample. Same value range, different dynamics.
void FlappingData(std::size_t days, std::uint64_t seed,
                  std::vector<double>* xs, std::vector<double>* ys,
                  std::vector<TimePoint>* times) {
  Rng rng(seed);
  const TimePoint start = PaperTraceStart();
  double walk = 60.0;
  for (std::size_t d = 0; d < days; ++d) {
    for (int t = 0; t < kSamplesPerDay; ++t) {
      const TimePoint tp = start + static_cast<TimePoint>(d) * kDay +
                           static_cast<TimePoint>(t) * kPaperSamplePeriod;
      const int hour = static_cast<int>(SecondsIntoDay(tp) / kHour);
      double load;
      if (hour < 7 || hour >= 19) {
        walk += rng.Normal(0.0, 2.0);
        walk = std::clamp(walk, 42.0, 80.0);
        load = walk;
      } else {
        load = (t % 2 == 0 ? 50.0 : 74.0) + rng.Normal(0.0, 1.5);
      }
      xs->push_back(load);
      ys->push_back(1.5 * load + 20.0 + rng.Normal(0.0, 1.0));
      times->push_back(tp);
    }
  }
}

void TimeConditioningAblation() {
  PrintSection(std::cout,
               "Extension 1 — time-of-day conditioning (flapping workload)");
  std::vector<double> xs, ys;
  std::vector<TimePoint> times;
  FlappingData(10, 17, &xs, &ys, &times);
  const std::size_t split = 7 * static_cast<std::size_t>(kSamplesPerDay);

  const std::vector<double> tx(xs.begin(), xs.begin() + split);
  const std::vector<double> ty(ys.begin(), ys.begin() + split);
  const std::vector<TimePoint> tt(times.begin(), times.begin() + split);

  TimeConditionedConfig config;
  config.model = DefaultModelConfig();
  config.model.partition.max_intervals = 10;
  config.bucket_start_hours = {0, 7, 19};
  auto conditioned = TimeConditionedPairModel::Learn(tx, ty, tt, config);
  PairModel plain = PairModel::Learn(tx, ty, config.model);

  ScoreAverager plain_day, plain_night, cond_day, cond_night;
  std::size_t plain_low = 0, cond_low = 0;
  for (std::size_t i = split; i < xs.size(); ++i) {
    const int hour = static_cast<int>(SecondsIntoDay(times[i]) / kHour);
    const bool night = hour < 7 || hour >= 19;
    const StepOutcome p = plain.Step(xs[i], ys[i]);
    if (p.has_score) {
      (night ? plain_night : plain_day).Add(p.fitness);
      if (p.fitness < 0.5) ++plain_low;
    }
    const StepOutcome c = conditioned.Step(xs[i], ys[i], times[i]);
    if (c.has_score) {
      (night ? cond_night : cond_day).Add(c.fitness);
      if (c.fitness < 0.5) ++cond_low;
    }
  }

  TextTable table;
  table.SetHeader({"model", "day fitness", "night fitness",
                   "false alarms (<0.5)"});
  table.Row()
      .Cell("plain TPM (paper)")
      .Num(plain_day.Mean(), 4)
      .Num(plain_night.Mean(), 4)
      .Int(static_cast<long long>(plain_low))
      .Done();
  table.Row()
      .Cell("time-conditioned (3 buckets)")
      .Num(cond_day.Mean(), 4)
      .Num(cond_night.Mean(), 4)
      .Int(static_cast<long long>(cond_low))
      .Done();
  table.Print(std::cout);
  std::cout << "The plain matrix mixes the night walk's local transitions"
               " with the daytime\nflap over the same cells; the day-bucket"
               " model learns the flap as normal.\n";
}

void RollingRetrainAblation() {
  PrintSection(std::cout,
               "Extension 2 — rolling re-initialization under strong drift");
  Rng rng(23);
  std::vector<double> xs, ys;
  const std::size_t n = 4000;
  for (std::size_t i = 0; i < n; ++i) {
    const double level = 50.0 + 0.05 * static_cast<double>(i);  // +200
    const double load = level + 20.0 * std::sin(i * 0.05) +
                        rng.Normal(0.0, 1.0);
    xs.push_back(load);
    ys.push_back(2.0 * load + 10.0 + rng.Normal(0.0, 1.0));
  }
  const std::size_t split = 800;
  const std::vector<double> tx(xs.begin(), xs.begin() + split);
  const std::vector<double> ty(ys.begin(), ys.begin() + split);

  ModelConfig frozen_config = DefaultModelConfig();
  frozen_config.adaptive = false;
  PairModel frozen = PairModel::Learn(tx, ty, frozen_config);
  ModelConfig adaptive_config = DefaultModelConfig();
  PairModel adaptive = PairModel::Learn(tx, ty, adaptive_config);
  RetrainerConfig cadence;
  cadence.window_samples = 800;
  cadence.interval_samples = 240;
  cadence.min_samples = 200;
  RollingPairRetrainer rolling(tx, ty, adaptive_config, cadence);

  struct Row {
    const char* name;
    ScoreAverager avg;
    std::size_t scored = 0, outliers = 0, cells = 0;
  };
  Row rows[3] = {{"frozen (offline)", {}, 0, 0, 0},
                 {"adaptive (paper online updates)", {}, 0, 0, 0},
                 {"adaptive + rolling rebuild", {}, 0, 0, 0}};
  for (std::size_t i = split; i < n; ++i) {
    const StepOutcome f = frozen.Step(xs[i], ys[i]);
    const StepOutcome a = adaptive.Step(xs[i], ys[i]);
    const StepOutcome r = rolling.Step(xs[i], ys[i]);
    const StepOutcome* outs[3] = {&f, &a, &r};
    for (int m = 0; m < 3; ++m) {
      if (outs[m]->has_score) {
        rows[m].avg.Add(outs[m]->fitness);
        ++rows[m].scored;
      }
      if (outs[m]->outlier) ++rows[m].outliers;
    }
  }
  rows[0].cells = frozen.Grid().CellCount();
  rows[1].cells = adaptive.Grid().CellCount();
  rows[2].cells = rolling.Model().Grid().CellCount();

  TextTable table;
  table.SetHeader({"model", "scored", "outliers", "avg fitness",
                   "final grid cells"});
  const std::size_t total = n - split;
  for (const Row& row : rows) {
    table.Row()
        .Cell(row.name)
        .Cell(std::to_string(row.scored) + "/" + std::to_string(total))
        .Int(static_cast<long long>(row.outliers))
        .Num(row.avg.Mean(), 4)
        .Int(static_cast<long long>(row.cells))
        .Done();
  }
  table.Print(std::cout);
  std::cout << "rolling rebuilds: " << rolling.Rebuilds()
            << "\nFrozen goes silent (outliers + unscorable gaps); paper-"
               "style adaptive chases the\ndrift by growing the grid"
               " without bound; rolling rebuilds keep a compact grid\nand"
               " full coverage.\n";
}

}  // namespace

int main() {
  TimeConditioningAblation();
  RollingRetrainAblation();
  return 0;
}
