// Figure 14 reproduction: Q scores with respect to locations (machines).
//
// For each group, the engine monitors the whole fleet over the 9-day test
// period and averages fitness per machine. The paper's shape: most
// machines sit above a clear threshold; a small number score much lower
// (e.g. one Group A machine below 0.9) — those are the problem sources.
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "engine/localizer.h"
#include "engine/monitor.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 20;
  config.trace_days = 24;  // May 29 .. June 21

  PrintSection(std::cout, "Figure 14 — Q scores w.r.t. locations");

  for (char g : {'A', 'B', 'C'}) {
    const PaperScenario scenario = MakeGroupScenario(g, config);
    const MeasurementFrame frame = GenerateTrace(scenario.spec);
    const TimePoint june13 = PaperTestStart();
    const MeasurementFrame train =
        frame.SliceByTime(PaperTraceStart(), june13);
    const MeasurementFrame test =
        frame.SliceByTime(june13, june13 + 9 * kDay);

    MonitorConfig engine;
    engine.model = DefaultModelConfig();
    engine.model.partition.max_intervals = 10;  // keep the fleet light
    const MeasurementGraph graph =
        MeasurementGraph::Neighborhood(train, 2, 7);
    SystemMonitor monitor(train, graph, engine);
    monitor.Run(test);

    LocalizerConfig loc;
    loc.deviations = 2.0;
    const LocalizationReport report =
        Localize(monitor.Infos(), monitor.MeasurementAverages(), loc);

    std::cout << "\nGroup " << g << " (" << frame.MeasurementCount()
              << " measurements on " << config.machine_count
              << " machines, " << graph.PairCount()
              << " pair models, 9-day test):\n";
    TextTable table;
    table.SetHeader({"rank", "machine", "avg Q", "note"});
    std::size_t rank = 1;
    for (const MachineScore& ms : report.ranking) {
      const bool worst5 = rank <= 5;
      const bool last = rank + 2 >= report.ranking.size();
      if (!worst5 && !last) {
        if (rank == 6) table.Row().Cell("...").Cell("").Cell("").Done();
        ++rank;
        continue;
      }
      std::string note;
      if (ms.machine == scenario.localization_machine) {
        note = "<- injected 9-day fault";
      } else if (ms.machine == scenario.problem_machine) {
        note = "<- June 13 problem machine";
      }
      table.Row()
          .Int(static_cast<long long>(rank))
          .Cell(scenario.spec.topology.machines
                    .at(static_cast<std::size_t>(ms.machine.value))
                    .hostname)
          .Num(ms.score, 4)
          .Cell(note)
          .Done();
      ++rank;
    }
    table.Print(std::cout);

    const bool hit = !report.ranking.empty() &&
                     report.ranking.front().machine ==
                         scenario.localization_machine;
    std::cout << "suspect threshold (mean - 2 sigma): "
              << FormatDouble(report.threshold, 4) << ", suspects flagged: "
              << report.suspects.size() << ", faulty machine ranked #1: "
              << (hit ? "yes" : "NO") << "\n";
  }

  std::cout << "\nPaper's Figure 14: within each group most machines score"
               " above a clear bar\nand only a few score low (one Group A"
               " machine below 0.9); the low scorers are\nwhere the"
               " administrators should look. Score scales differ per group"
               " because the\nthree systems have different data"
               " characteristics — ours differ too.\n";
  return 0;
}
