// Ablation: grid resolution (max_intervals) — the model's key
// hyper-parameter, which the paper does not sweep.
//
// Coarse grids blur anomalies into normal cells (weak detection); fine
// grids fragment normal behaviour across many cells (lower fitness on
// normal data, larger matrices, slower updates). This bench sweeps the
// per-dimension interval cap on the Group B scenario and reports normal
// fitness, spike depth on the injected fault, matrix size and step cost.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/fitness.h"
#include "engine/alarm.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 16;
  config.trace_days = 16;
  const PaperScenario scenario = MakeGroupScenario('C', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train = frame.SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test = frame.SliceByTime(june13, june13 + kDay);
  const MeasurementId x = *frame.FindByName(scenario.focus_x);
  const MeasurementId y = *frame.FindByName(scenario.focus_y);

  PrintSection(std::cout,
               "Ablation — grid resolution (intervals per dimension)");
  std::cout << "Group C focus pair (in-range correlation break); fault "
            << FormatTimePoint(scenario.problem_start).substr(11) << "-"
            << FormatTimePoint(scenario.problem_end).substr(11)
            << "; normal fitness should stay high and the fault's min"
               " fitness low.\n\n";

  TextTable table;
  table.SetHeader({"max intervals", "cells", "normal fitness",
                   "fault min Q", "detected", "train ms", "test ms"});

  for (std::size_t cap : {3u, 6u, 10u, 14u, 20u, 28u}) {
    ModelConfig model_config = DefaultModelConfig();
    model_config.partition.max_intervals = cap;
    model_config.partition.units = std::max<std::size_t>(50, cap * 4);

    Stopwatch clock;
    PairModel model = PairModel::Learn(train.Series(x).Values(),
                                       train.Series(y).Values(),
                                       model_config);
    const double train_ms = clock.ElapsedSeconds() * 1e3;

    clock.Reset();
    std::vector<std::optional<double>> scores(test.SampleCount());
    ScoreAverager normal;
    double fault_min = 1.0;
    for (std::size_t t = 0; t < test.SampleCount(); ++t) {
      const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
      if (!out.has_score) continue;
      scores[t] = out.fitness;
      const TimePoint tp = test.TimeAt(t);
      const bool in_fault = tp >= scenario.problem_start - kHour &&
                            tp < scenario.problem_end + kHour;
      if (in_fault) {
        fault_min = std::min(fault_min, out.fitness);
      } else {
        normal.Add(out.fitness);
      }
    }
    const double test_ms = clock.ElapsedSeconds() * 1e3;

    const auto windows = ExtractLowScoreWindows(
        std::span<const std::optional<double>>(scores), june13,
        kPaperSamplePeriod, 0.55);
    const bool detected =
        AnyWindowOverlaps(windows, scenario.problem_start - kHour,
                          scenario.problem_end + kHour);

    table.Row()
        .Int(static_cast<long long>(cap))
        .Int(static_cast<long long>(model.Grid().CellCount()))
        .Num(normal.Mean(), 4)
        .Num(fault_min, 3)
        .Cell(detected ? "yes" : "NO")
        .Num(train_ms, 1)
        .Num(test_ms, 1)
        .Done();
  }
  table.Print(std::cout);
  std::cout << "\nCoarse grids blur the anomaly (shallower spike: the break"
               " shares cells with\nnormal data); very fine grids fragment"
               " normal behaviour (normal fitness drops,\nspike depth"
               " shrinks again) while matrix memory grows quadratically and"
               " step\ncost linearly in cells. The defaults (10-14"
               " intervals) sit in the sweet spot.\n";
  return 0;
}
