// Figures 7 and 8 reproduction: the adaptive grid structure learned from
// history data, and its online extension when the distribution drifts —
// plus an ablation of the extension policy (extend vs reject-all).
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/fitness.h"
#include "core/model.h"
#include "grid/partitioner.h"

namespace {

using namespace pmcorr;

// History like Figure 7: a dense elongated cloud. Online data like
// Figure 8: the same cloud slowly shifted along the vertical axis.
void MakeCloud(std::size_t n, double y_shift_end, std::uint64_t seed,
               std::vector<double>* xs, std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(n);
  ys->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    const double x = 0.05 + 0.35 * rng.Uniform() * rng.Uniform();
    const double y = 0.005 + 0.09 * x + rng.Normal(0.0, 0.003) +
                     y_shift_end * t;
    (*xs)[i] = x;
    (*ys)[i] = y;
  }
}

void PrintIntervals(const char* label, const IntervalList& list) {
  std::cout << label << " (" << list.Size() << " intervals): "
            << list.ToString() << "\n";
}

}  // namespace

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  std::vector<double> hist_x, hist_y;
  MakeCloud(2000, 0.0, 11, &hist_x, &hist_y);

  ModelConfig config = DefaultModelConfig();
  config.partition.max_intervals = 10;
  PairModel model = PairModel::Learn(hist_x, hist_y, config);

  PrintSection(std::cout, "Figure 7 — initial grid from history data");
  std::cout << model.Grid().Describe() << "\n";
  PrintIntervals("dim1", model.Grid().Dim1());
  PrintIntervals("dim2", model.Grid().Dim2());
  const std::size_t cells_before = model.Grid().CellCount();
  const std::size_t rows_before = model.Grid().Rows();
  const std::size_t cols_before = model.Grid().Cols();

  // Online data drifts upward along dim2 (the Figure 8 situation).
  std::vector<double> on_x, on_y;
  MakeCloud(1500, 0.02, 13, &on_x, &on_y);
  std::size_t extensions = 0, outliers = 0;
  for (std::size_t i = 0; i < on_x.size(); ++i) {
    const StepOutcome out = model.Step(on_x[i], on_y[i]);
    if (out.extended_grid) ++extensions;
    if (out.outlier) ++outliers;
  }

  PrintSection(std::cout, "Figure 8 — grid after online drift");
  std::cout << model.Grid().Describe() << "\n";
  PrintIntervals("dim1", model.Grid().Dim1());
  PrintIntervals("dim2", model.Grid().Dim2());

  TextTable table;
  table.SetHeader({"", "before", "after"});
  table.Row()
      .Cell("dim1 intervals")
      .Int(static_cast<long long>(rows_before))
      .Int(static_cast<long long>(model.Grid().Rows()))
      .Done();
  table.Row()
      .Cell("dim2 intervals")
      .Int(static_cast<long long>(cols_before))
      .Int(static_cast<long long>(model.Grid().Cols()))
      .Done();
  table.Row()
      .Cell("cells")
      .Int(static_cast<long long>(cells_before))
      .Int(static_cast<long long>(model.Grid().CellCount()))
      .Done();
  table.Print(std::cout);
  std::cout << "extension events: " << extensions
            << ", outliers rejected: " << outliers
            << "\nThe data evolve along the vertical axis and intervals are"
               " added predominantly\nthere — matching the Figure 7 ->"
               " Figure 8 transition in the paper.\n";

  // Ablation: a frozen grid (reject-all policy) turns the drifted tail
  // into outliers with fitness 0.
  ModelConfig frozen = config;
  frozen.adaptive = false;
  PairModel frozen_model = PairModel::Learn(hist_x, hist_y, frozen);
  std::size_t frozen_outliers = 0;
  ScoreAverager frozen_avg, adaptive_avg;
  PairModel adaptive_model = PairModel::Learn(hist_x, hist_y, config);
  for (std::size_t i = 0; i < on_x.size(); ++i) {
    const StepOutcome f = frozen_model.Step(on_x[i], on_y[i]);
    if (f.outlier) ++frozen_outliers;
    if (f.has_score) frozen_avg.Add(f.fitness);
    const StepOutcome a = adaptive_model.Step(on_x[i], on_y[i]);
    if (a.has_score) adaptive_avg.Add(a.fitness);
  }

  PrintSection(std::cout, "Ablation — extension policy under drift");
  TextTable ab;
  ab.SetHeader({"policy", "outliers", "avg fitness"});
  ab.Row()
      .Cell("extend within lambda*r_avg (paper)")
      .Int(static_cast<long long>(outliers))
      .Num(adaptive_avg.Mean(), 4)
      .Done();
  ab.Row()
      .Cell("frozen grid (reject all)")
      .Int(static_cast<long long>(frozen_outliers))
      .Num(frozen_avg.Mean(), 4)
      .Done();
  ab.Print(std::cout);
  std::cout << "Freezing the grid misclassifies gradual distribution"
               " evolution as outliers.\n";
  return 0;
}
