// Ablation: does the temporal (order-1 Markov) structure matter?
//
// The paper's claim against prior art: "our approach models the data
// evolution instead of static data points, and thus detects outliers
// from both spatial and temporal perspectives." This bench strips the
// temporal part — an order-0 model that scores each point by its cell's
// historical density over the *same* adaptive grid — and compares the
// two on a test day containing (a) a teleporting anomaly that visits
// only individually-common states, and (b) a static outlier excursion.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "baselines/static_density.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/model.h"

namespace {

using namespace pmcorr;
using namespace pmcorr::bench;

struct Labeled {
  std::vector<double> xs, ys;
  std::vector<int> label;  // 0 normal, 1 teleport anomaly, 2 static outlier
};

void MakeData(std::uint64_t seed, std::vector<double>* train_x,
              std::vector<double>* train_y, Labeled* test) {
  Rng rng(seed);
  auto load_at = [&](int t) {
    const double phase =
        2.0 * 3.14159265358979 * (static_cast<double>(t) / kSamplesPerDay);
    return 70.0 + 45.0 * std::sin(phase) + rng.Normal(0.0, 1.2);
  };
  auto y_of = [&](double load) {
    return 100.0 * load / (load + 50.0) + rng.Normal(0.0, 0.6);
  };

  for (int d = 0; d < 6; ++d) {
    for (int t = 0; t < kSamplesPerDay; ++t) {
      const double load = load_at(t);
      train_x->push_back(load);
      train_y->push_back(y_of(load));
    }
  }

  for (int t = 0; t < kSamplesPerDay; ++t) {
    const int hour = t * 24 / kSamplesPerDay;
    int label = 0;
    double load = load_at(t);
    if (hour >= 9 && hour < 11) {
      // Teleporting anomaly: each sample drawn from a *common* operating
      // state, but states alternate between the daily extremes — every
      // point is spatially ordinary, the sequence is temporal nonsense.
      label = 1;
      load = (t % 2 == 0) ? 26.0 + rng.Normal(0.0, 1.0)
                          : 114.0 + rng.Normal(0.0, 1.0);
    } else if (hour >= 15 && hour < 17) {
      // Static outlier: a level the system never visited (spatially odd,
      // temporally smooth) — the easy case both models should flag.
      label = 2;
      load = 150.0 + rng.Normal(0.0, 1.0);
    }
    test->xs.push_back(load);
    test->ys.push_back(label == 2 ? y_of(load) + 20.0 : y_of(load));
    test->label.push_back(label);
  }
}

}  // namespace

int main() {
  PrintSection(std::cout,
               "Ablation — order-1 transitions vs order-0 static density");
  std::cout << "Same adaptive grid; the order-0 model scores points by cell"
               " density, ignoring\nthe previous sample. Cells: mean score /"
               " min score per bucket.\n\n";

  std::vector<double> train_x, train_y;
  Labeled test;
  MakeData(29, &train_x, &train_y, &test);

  ModelConfig config = DefaultModelConfig();
  config.partition.max_intervals = 12;
  config.adaptive = false;  // isolate the scoring rule from adaptation
  PairModel order1 = PairModel::Learn(train_x, train_y, config);
  const StaticDensityModel order0 =
      StaticDensityModel::Learn(train_x, train_y, config.partition);

  double sum[2][3] = {{0}}, mn[2][3] = {{1, 1, 1}, {1, 1, 1}};
  std::size_t n[2][3] = {{0}};
  for (std::size_t i = 0; i < test.xs.size(); ++i) {
    const int l = test.label[i];
    const double s0 = order0.Score(test.xs[i], test.ys[i]);
    sum[0][l] += s0;
    mn[0][l] = std::min(mn[0][l], s0);
    ++n[0][l];
    const StepOutcome out = order1.Step(test.xs[i], test.ys[i]);
    if (out.has_score) {
      sum[1][l] += out.fitness;
      mn[1][l] = std::min(mn[1][l], out.fitness);
      ++n[1][l];
    }
  }

  TextTable table;
  table.SetHeader({"model", "normal", "teleport anomaly", "static outlier"});
  const char* names[2] = {"order-0 static density",
                          "order-1 transitions (paper)"};
  for (int m = 0; m < 2; ++m) {
    auto row = table.Row();
    row.Cell(names[m]);
    for (int l = 0; l < 3; ++l) {
      const double mean = n[m][l] ? sum[m][l] / static_cast<double>(n[m][l])
                                  : 0.0;
      row.Cell(FormatDouble(mean, 2) + "/" + FormatDouble(mn[m][l], 2));
    }
    row.Done();
  }
  table.Print(std::cout);

  const double tele0 = sum[0][1] / static_cast<double>(n[0][1]);
  const double tele1 = sum[1][1] / static_cast<double>(n[1][1]);
  std::cout << "\nThe static outlier is easy for both (score ~0). The"
               " teleporting anomaly is\ninvisible to the order-0 model ("
            << FormatDouble(tele0, 2) << " — every state is common) but"
               " collapses under\nthe transition model ("
            << FormatDouble(tele1, 2)
            << ") — the temporal correlations are what detect it.\n";
  return 0;
}
