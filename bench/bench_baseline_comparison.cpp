// Section 1 / Section 2 motivating comparison: the transition-probability
// model (TPM) versus the baselines the paper cites —
//   * linear regression invariants [1, 2] — only exist for linear pairs;
//   * Gaussian-mixture ellipses [3]       — only elliptical clusters;
//   * per-metric z-score thresholds       — false-positive on legitimate
//                                           request floods (Figure 1).
//
// Protocol per correlation shape (linear / saturating / regime):
//   train 6 clean days; test one day containing a legitimate 2h flood
//   (the workload doubles — both measurements rise together, correlation
//   intact) and a 2h correlation break (y decouples from the workload —
//   a real problem).
// A good detector stays quiet during the flood and reacts during the
// break. Each detector reports a score in [0,1] (1 = healthy); rows give
// the per-bucket mean score, min score (the "spike depth" the paper reads
// off Figure 12), and the alarm rate over all bucket samples.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "baselines/ewma.h"
#include "baselines/gmm.h"
#include "baselines/linear_invariant.h"
#include "baselines/zscore.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/model.h"

namespace {

using namespace pmcorr;
using namespace pmcorr::bench;

enum class Shape { kLinear, kSaturating, kRegime };

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kLinear:     return "linear (Fig 2b)";
    case Shape::kSaturating: return "saturating (Fig 2c/d)";
    case Shape::kRegime:     return "regime/arbitrary (Fig 2d)";
  }
  return "?";
}

double Respond(Shape shape, double load) {
  switch (shape) {
    case Shape::kLinear:
      return 3.0 * load + 40.0;
    case Shape::kSaturating:
      // Knee well below the typical load: the operating range lives deep
      // in the bend (the Figure 2(d) utilization curve).
      return 100.0 * load / (load + 22.0);
    case Shape::kRegime:
      // Discontinuous mode switch at load 60 (cache-tier failover).
      return load < 60.0 ? 0.5 * load + 18.0 : 3.0 * load - 130.0;
  }
  return 0.0;
}

struct Labeled {
  std::vector<double> xs, ys;
  std::vector<int> label;  // 0 normal, 1 flood (benign), 2 break (problem)
};

// 6 training days + 1 labeled test day at the 6-minute rate.
void MakeData(Shape shape, std::uint64_t seed, std::vector<double>* train_x,
              std::vector<double>* train_y, Labeled* test) {
  Rng rng(seed);
  auto load_at = [&](int sample_of_day) {
    const double phase =
        2.0 * 3.14159265358979 *
        (static_cast<double>(sample_of_day) / kSamplesPerDay - 0.6);
    return 20.0 + 105.0 * std::exp(std::cos(phase) - 1.0) +
           rng.Normal(0.0, 1.5);
  };
  auto emit_x = [&](double load) {
    return 1.8 * load + 25.0 + rng.Normal(0.0, 1.0);
  };

  for (int d = 0; d < 6; ++d) {
    for (int t = 0; t < kSamplesPerDay; ++t) {
      const double load = load_at(t);
      train_x->push_back(emit_x(load));
      train_y->push_back(Respond(shape, load) + rng.Normal(0.0, 0.8));
    }
  }

  double walk = Respond(shape, 60.0);
  for (int t = 0; t < kSamplesPerDay; ++t) {
    const int hour = t * 24 / kSamplesPerDay;
    int label = 0;
    double load = load_at(t);
    if (hour >= 10 && hour < 12) {
      label = 1;    // legitimate flood: the workload doubles,
      load *= 2.0;  // both measurements follow it
    } else if (hour >= 15 && hour < 17) {
      label = 2;    // real problem: y decouples from the workload
    }
    test->xs.push_back(emit_x(load));
    if (label == 2) {
      // Flapping decoupled signal: random walk plus occasional re-jumps,
      // clamped to plausible values so no per-metric bound fires.
      if (rng.Bernoulli(0.15)) {
        walk = Respond(shape, load) +
               rng.Uniform(-0.8, 0.8) *
                   (Respond(shape, 120.0) - Respond(shape, 25.0));
      } else {
        walk += rng.Normal(0.0, 0.25 * (Respond(shape, 120.0) -
                                        Respond(shape, 25.0)));
      }
      walk = std::clamp(walk, Respond(shape, 15.0), Respond(shape, 130.0));
      test->ys.push_back(walk);
    } else {
      test->ys.push_back(Respond(shape, load) + rng.Normal(0.0, 0.8));
    }
    test->label.push_back(label);
  }
}

// Per-bucket score statistics for one detector.
struct BucketStats {
  double mean[3] = {0, 0, 0};
  double min[3] = {1, 1, 1};
  double alarm_rate[3] = {0, 0, 0};
};

// scores[i] < 0 means "unscored" (only the TPM has such samples; they
// count toward the bucket size but not toward mean/min/alarms).
BucketStats Tally(const Labeled& test, const std::vector<double>& scores,
                  const std::vector<bool>& alarms) {
  BucketStats stats;
  double sum[3] = {0, 0, 0};
  std::size_t n[3] = {0, 0, 0}, scored[3] = {0, 0, 0}, fired[3] = {0, 0, 0};
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const int l = test.label[i];
    ++n[l];
    if (alarms[i]) ++fired[l];
    if (scores[i] < 0) continue;
    sum[l] += scores[i];
    stats.min[l] = std::min(stats.min[l], scores[i]);
    ++scored[l];
  }
  for (int l = 0; l < 3; ++l) {
    stats.mean[l] = scored[l] ? sum[l] / static_cast<double>(scored[l]) : 0.0;
    stats.alarm_rate[l] =
        n[l] ? static_cast<double>(fired[l]) / static_cast<double>(n[l]) : 0.0;
  }
  return stats;
}

void AddRows(TextTable& table, Shape shape, const char* detector,
             const BucketStats& stats) {
  auto row = table.Row();
  row.Cell(ShapeName(shape)).Cell(detector);
  for (int l = 0; l < 3; ++l) {
    row.Cell(FormatDouble(stats.mean[l], 2) + "/" +
             FormatDouble(stats.min[l], 2) + "/" +
             FormatPercent(stats.alarm_rate[l], 0));
  }
  row.Done();
}

}  // namespace

int main() {
  PrintSection(std::cout,
               "Baseline comparison — score (mean/min/alarm rate) by bucket");
  std::cout << "buckets: normal | benign flood | correlation break;  want"
               " healthy scores on the\nfirst two and a deep drop + alarms"
               " on the third\n\n";

  TextTable table;
  table.SetHeader({"shape", "detector", "normal", "flood(benign)",
                   "break(problem)"});

  for (Shape shape : {Shape::kLinear, Shape::kSaturating, Shape::kRegime}) {
    std::vector<double> train_x, train_y;
    Labeled test;
    MakeData(shape, 20080529 + static_cast<int>(shape), &train_x, &train_y,
             &test);
    const std::size_t n = test.xs.size();

    // --- TPM (this paper) ---
    {
      ModelConfig config = DefaultModelConfig();
      config.partition.max_intervals = 12;
      config.likelihood_weight = 0.3;
      config.forgetting = 0.995;
      PairModel model = PairModel::Learn(train_x, train_y, config);
      std::vector<double> scores(n, -1.0);
      std::vector<bool> alarms(n, false);
      for (std::size_t i = 0; i < n; ++i) {
        const StepOutcome out = model.Step(test.xs[i], test.ys[i]);
        if (out.has_score) {
          scores[i] = out.fitness;
          alarms[i] = out.fitness < 0.7;
        }
      }
      AddRows(table, shape, "TPM (this paper)", Tally(test, scores, alarms));
    }

    // --- Linear invariant [1,2]: only high-fitness fits qualify ---
    {
      LinearInvariantConfig config;
      config.min_r_squared = 0.95;
      const auto inv = LinearInvariant::Learn(train_x, train_y, config);
      if (!inv) {
        table.Row().Cell(ShapeName(shape)).Cell("linear invariant")
            .Cell("no invariant (R^2 < 0.95)").Cell("-").Cell("-").Done();
      } else {
        std::vector<double> scores(n);
        std::vector<bool> alarms(n);
        for (std::size_t i = 0; i < n; ++i) {
          const auto eval = inv->Evaluate(test.xs[i], test.ys[i]);
          scores[i] = eval.score;
          alarms[i] = eval.alarm;
        }
        AddRows(table, shape, "linear invariant",
                Tally(test, scores, alarms));
      }
    }

    // --- Gaussian mixture [3] ---
    {
      GmmConfig config;
      config.components = 3;
      const auto gmm = GaussianMixtureModel::Fit(train_x, train_y, config);
      std::vector<double> scores(n);
      std::vector<bool> alarms(n);
      for (std::size_t i = 0; i < n; ++i) {
        scores[i] = gmm.Score(test.xs[i], test.ys[i]);
        alarms[i] = gmm.IsAnomaly(test.xs[i], test.ys[i]);
      }
      AddRows(table, shape, "gaussian mixture", Tally(test, scores, alarms));
    }

    // --- Per-metric z-score ---
    {
      const auto zx = ZScoreDetector::Learn(train_x, 3.0);
      const auto zy = ZScoreDetector::Learn(train_y, 3.0);
      std::vector<double> scores(n);
      std::vector<bool> alarms(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double z =
            std::max(std::fabs(zx.Z(test.xs[i])), std::fabs(zy.Z(test.ys[i])));
        scores[i] = std::max(0.0, 1.0 - z / 3.0);
        alarms[i] = zx.Alarm(test.xs[i]) || zy.Alarm(test.ys[i]);
      }
      AddRows(table, shape, "z-score per metric",
              Tally(test, scores, alarms));
    }

    // --- Per-metric EWMA control chart ---
    {
      auto ex = EwmaDetector::Learn(train_x);
      auto ey = EwmaDetector::Learn(train_y);
      std::vector<double> scores(n);
      std::vector<bool> alarms(n);
      for (std::size_t i = 0; i < n; ++i) {
        const auto rx = ex.Observe(test.xs[i]);
        const auto ry = ey.Observe(test.ys[i]);
        const double sig = std::max(rx.sigmas, ry.sigmas);
        scores[i] = std::max(0.0, 1.0 - sig / 3.0);
        alarms[i] = rx.alarm || ry.alarm;
      }
      AddRows(table, shape, "EWMA chart per metric",
              Tally(test, scores, alarms));
    }
  }
  table.Print(std::cout);

  std::cout
      << "\nReading (cells are mean/min/alarm-rate):\n"
         "  - the linear invariant works on the linear pair, fails to"
         " qualify on the\n    saturating pair (no R^2 >= 0.95 fit exists"
         " — the paper's first motivating\n    gap), and on the regime"
         " pair the line it finds extrapolates wrongly and\n    fires"
         " through most of the benign flood;\n"
         "  - the z-score detector and the GMM alarm throughout the benign"
         " flood (the\n    Figure 1 false-positive scenario);\n"
         "  - the EWMA control chart assumes i.i.d. in-control data and"
         " treats the daily\n    cycle itself as out-of-control (~40%"
         " false alarms on perfectly normal\n    samples) — classic SPC"
         " does not survive seasonal monitoring data;\n"
         "  - the TPM fires one outlier alarm at flood entry, then has no"
         " source cell to\n    score from until the flood recedes — it"
         " never floods the operator;\n"
         "  - on the break, the TPM's min score collapses (the deep Figure"
         " 12 spike) and\n    alarms fire, for every correlation shape"
         " including the ones no baseline\n    models.\n";
  return 0;
}
