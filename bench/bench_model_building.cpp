// Model-building time at the paper's experimental scale (Section 6: 193
// pair models, one month of 6-minute data): wall-clock for learning every
// pair model from its history window, A/B between the sequential
// reference replay (the pre-row-bucketing Learn loop) and the compiled
// row-bucketed replay, which are bitwise-identical by construction (see
// tests/test_learn_replay.cpp).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "engine/measurement_graph.h"
#include "engine/thread_pool.h"
#include "telemetry/generator.h"
#include "timeseries/summary.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  PrintSection(std::cout,
               "Model building — 193 pair models x 15 days of history");

  ScenarioConfig config;
  config.machine_count = 50;
  config.trace_days = 30;
  const PaperScenario scenario = MakeGroupScenario('A', config);

  Stopwatch clock;
  const MeasurementFrame raw = GenerateTrace(scenario.spec);
  SelectionCriteria criteria;
  criteria.linear_r2_threshold = 0.95;
  criteria.min_cv = 0.02;
  criteria.max_measurements = 100;
  const MeasurementFrame frame =
      raw.SelectMeasurements(SelectMeasurements(raw, criteria));
  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), PaperTestStart());
  const MeasurementGraph graph = MeasurementGraph::Neighborhood(train, 2, 42);
  std::cout << "prepared " << graph.PairCount() << " pairs x "
            << train.SampleCount() << " history samples in "
            << FormatDouble(clock.ElapsedSeconds(), 2) << " s\n";

  ModelConfig model_config = DefaultModelConfig();
  model_config.partition.max_intervals = 12;

  // Resolve the per-pair history columns once.
  const std::size_t pairs = graph.PairCount();
  std::vector<std::span<const double>> xs(pairs), ys(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    xs[i] = train.Series(graph.Pair(i).a).Values();
    ys[i] = train.Series(graph.Pair(i).b).Values();
  }

  // A: sequential reference (compile disabled — the PR-2 Learn loop).
  // B: row-bucketed replay. Best-of-reps wall clock for each.
  constexpr int kReps = 5;
  double seq_s = 1e100, replay_s = 1e100;
  std::vector<PairModel> models(pairs);
  for (int rep = 0; rep < kReps; ++rep) {
    clock.Reset();
    for (std::size_t i = 0; i < pairs; ++i) {
      models[i] = PairModel::LearnSequential(xs[i], ys[i], model_config);
    }
    seq_s = std::min(seq_s, clock.ElapsedSeconds());
    clock.Reset();
    for (std::size_t i = 0; i < pairs; ++i) {
      models[i] = PairModel::Learn(xs[i], ys[i], model_config);
    }
    replay_s = std::min(replay_s, clock.ElapsedSeconds());
  }

  const double samples = static_cast<double>(train.SampleCount());
  TextTable table;
  table.SetHeader({"path", "wall time", "models/s", "samples/s"});
  auto row = [&](const char* name, double secs) {
    table.Row()
        .Cell(name)
        .Cell(FormatDouble(secs * 1e3, 1) + " ms")
        .Cell(FormatDouble(static_cast<double>(pairs) / secs, 0))
        .Cell(FormatDouble(static_cast<double>(pairs) * samples / secs, 0))
        .Done();
  };
  row("sequential reference", seq_s);
  row("row-bucketed replay", replay_s);
  table.Print(std::cout);
  std::cout << "replay speedup over sequential: "
            << FormatDouble(seq_s / replay_s, 2)
            << "x (identical models — see test_learn_replay)\n";

  BenchJson json("model_building");
  json.Set("pairs", static_cast<std::int64_t>(pairs));
  json.Set("history_samples", static_cast<std::int64_t>(train.SampleCount()));
  json.Set("sequential_s", seq_s);
  json.Set("replay_s", replay_s);
  json.Set("replay_speedup_over_sequential", seq_s / replay_s);
  json.Set("replay_models_per_s", static_cast<double>(pairs) / replay_s);
  json.Set("replay_samples_per_s",
           static_cast<double>(pairs) * samples / replay_s);
  const std::string path = json.Write();
  if (!path.empty()) std::cout << "wrote " << path << "\n";
  return 0;
}
