// Figures 1 and 2 reproduction: measurement correlations in the
// monitoring data — linear pairs, non-linear pairs and the overall mix.
//
// The paper reports that "nearly half of the measurements have linear
// relationships with at least one of the other measurements, but the
// other half only have non-linear ones", and motivates the method with
// the three scatter shapes of Figure 2(b)-(d).
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "bench_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "telemetry/generator.h"
#include "timeseries/summary.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 16;
  config.trace_days = 7;
  const PaperScenario scenario = MakeGroupScenario('A', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);

  PrintSection(std::cout, "Figure 2 — exemplar pair shapes (Group A)");
  struct Exemplar {
    const char* description;
    MetricKind kx;
    MetricKind ky;
    bool same_machine;
  };
  const Exemplar exemplars[] = {
      {"2(b) in/out octets, same machine (linear)",
       MetricKind::kIfInOctetsRate, MetricKind::kIfOutOctetsRate, true},
      {"2(c) out octets on two machines (non-linear)",
       MetricKind::kIfOutOctetsRate, MetricKind::kIfOutOctetsRate, false},
      {"2(d) port throughput vs utilization (arbitrary)",
       MetricKind::kPortOutOctetsRate, MetricKind::kCurrentUtilizationPort,
       true},
  };

  TextTable table;
  table.SetHeader({"pair", "pearson", "spearman", "linear R^2"});
  for (const Exemplar& ex : exemplars) {
    std::optional<MeasurementId> a, b;
    for (const auto& info : frame.Infos()) {
      if (!a && info.kind == ex.kx) {
        a = info.id;
        continue;
      }
      if (a && !b && info.kind == ex.ky) {
        const bool same = frame.Info(*a).machine == info.machine;
        if (same == ex.same_machine) b = info.id;
      }
    }
    if (!a || !b) continue;
    const auto xs = frame.Series(*a).Values();
    const auto ys = frame.Series(*b).Values();
    const auto fit = FitLinear(xs, ys);
    table.Row()
        .Cell(ex.description)
        .Num(PearsonCorrelation(xs, ys).value_or(0.0), 3)
        .Num(SpearmanCorrelation(xs, ys).value_or(0.0), 3)
        .Num(fit ? fit->r_squared : 0.0, 3)
        .Done();
  }
  table.Print(std::cout);
  std::cout << "All three pairs are strongly associated (high Spearman), but"
               " only 2(b) is\nexplained by a line — the gap 2(c)/(d)"
               " motivates the grid model.\n";

  // The in-text statistic: fraction of measurements with at least one
  // linear partner.
  const auto relations = FindLinearRelations(frame, 0.9);
  std::unordered_set<MeasurementId> with_linear;
  for (const auto& rel : relations) {
    with_linear.insert(rel.pair.a);
    with_linear.insert(rel.pair.b);
  }
  const double frac = static_cast<double>(with_linear.size()) /
                      static_cast<double>(frame.MeasurementCount());

  PrintSection(std::cout, "Section 1 in-text — linear vs non-linear mix");
  std::cout << frame.MeasurementCount() << " measurements, "
            << relations.size() << " strongly linear pairs (R^2 >= 0.9)\n"
            << "measurements with >= 1 linear partner: "
            << with_linear.size() << " ("
            << FormatPercent(frac, 1)
            << "; the paper reports \"nearly half\")\n";

  // Figure 1: two correlated series rising together during a flood.
  PrintSection(std::cout, "Figure 1 — correlated time series (first day)");
  std::optional<MeasurementId> in_id, out_id;
  for (const auto& info : frame.Infos()) {
    if (info.kind == MetricKind::kIfInOctetsRate && !in_id) in_id = info.id;
    if (info.kind == MetricKind::kIfOutOctetsRate && !out_id &&
        in_id && frame.Info(*in_id).machine == info.machine) {
      out_id = info.id;
    }
  }
  if (in_id && out_id) {
    TextTable day;
    day.SetHeader({"hour", "IfInOctetsRate", "IfOutOctetsRate"});
    for (int h = 0; h < 24; h += 3) {
      const std::size_t t = static_cast<std::size_t>(h) * 10;  // 6-min rate
      day.Row()
          .Cell(std::to_string(h) + ":00")
          .Num(frame.Value(*in_id, t), 0)
          .Num(frame.Value(*out_id, t), 0)
          .Done();
    }
    day.Print(std::cout);
    const auto r = PearsonCorrelation(frame.Series(*in_id).Values(),
                                      frame.Series(*out_id).Values());
    std::cout << "Correlation over the whole week: "
              << FormatDouble(r.value_or(0.0), 3)
              << " — the two measurements rise and fall together with the"
                 " workload.\n";
  }
  return 0;
}
