// Figures 5, 9 and 10 reproduction, plus a kernel ablation.
//
// 1. Figure 5: the 9x9 prior transition matrix over a 3x3 grid. With the
//    triangular kernel our prior matches every printed percentage.
// 2. Figures 9/10: the prior distribution out of one cell versus the
//    posterior after six days of observations favor a neighbor cell.
// 3. Ablation: how the exponential kernel (the text's formulation)
//    changes the same prior row.
#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "common/time.h"
#include "core/transition_matrix.h"
#include "grid/grid.h"
#include "grid/kernels.h"

namespace {

using namespace pmcorr;

// The matrix printed in the paper's Figure 5 (percent).
constexpr double kFigure5[9][9] = {
    {21.98, 14.65, 8.79, 14.65, 10.99, 7.33, 8.79, 7.33, 5.49},
    {13.16, 19.74, 13.16, 9.87, 13.16, 9.87, 6.58, 7.89, 6.58},
    {8.79, 14.65, 21.98, 7.33, 10.99, 14.65, 5.49, 7.33, 8.79},
    {13.16, 9.87, 6.58, 19.74, 13.16, 7.89, 13.16, 9.87, 6.58},
    {8.82, 11.76, 8.82, 11.76, 17.65, 11.76, 8.82, 11.76, 8.82},
    {6.58, 9.87, 13.16, 7.89, 13.16, 19.74, 6.58, 9.87, 13.16},
    {8.79, 7.33, 5.49, 14.65, 10.99, 7.33, 21.98, 14.65, 8.79},
    {6.58, 7.89, 6.58, 9.87, 13.16, 9.87, 13.16, 19.74, 13.16},
    {5.49, 7.33, 8.79, 7.33, 10.99, 14.65, 8.79, 14.65, 21.98},
};

void PrintMatrix(const Grid2D& grid, const TransitionMatrix& matrix) {
  TextTable table;
  std::vector<std::string> header = {""};
  for (std::size_t j = 0; j < grid.CellCount(); ++j) {
    header.push_back("c" + std::to_string(j + 1));
  }
  table.SetHeader(header);
  for (std::size_t i = 0; i < grid.CellCount(); ++i) {
    auto row = table.Row();
    row.Cell("c" + std::to_string(i + 1));
    const auto dist = matrix.RowDistribution(i);
    for (double p : dist) row.Percent(p);
    row.Done();
  }
  table.Print(std::cout);
}

void Figure5() {
  const Grid2D grid(IntervalList::Uniform(0.0, 3.0, 3),
                    IntervalList::Uniform(0.0, 3.0, 3));
  const TriangularKernel kernel;
  const TransitionMatrix prior = TransitionMatrix::Prior(grid, kernel);

  PrintSection(std::cout, "Figure 5 — prior transition matrix (3x3 grid)");
  std::cout << "Kernel: " << kernel.Describe() << "\n";
  PrintMatrix(grid, prior);

  double max_err = 0.0;
  for (std::size_t i = 0; i < 9; ++i) {
    const auto row = prior.RowDistribution(i);
    for (std::size_t j = 0; j < 9; ++j) {
      max_err = std::max(max_err,
                         std::fabs(row[j] * 100.0 - kFigure5[i][j]));
    }
  }
  std::cout << "Max |ours - paper| over all 81 entries: " << max_err
            << " percentage points (paper prints 2 decimals)\n";
}

void Figures9And10() {
  // A 4x4 grid; pick cell c12 (index 11) like the paper's illustration.
  const Grid2D grid(IntervalList::Uniform(0.0, 4.0, 4),
                    IntervalList::Uniform(0.0, 4.0, 4));
  const TriangularKernel kernel;
  TransitionMatrix matrix = TransitionMatrix::Prior(grid, kernel);
  const std::size_t c12 = 11;
  const std::size_t c10 = 9;

  PrintSection(std::cout,
               "Figure 9 — prior distribution of transitions out of c12");
  const auto prior_row = matrix.RowDistribution(c12);

  // Six days of observations at the paper's 6-minute rate in which the
  // data mostly moves from c12 to c10 (plus some self-transitions).
  Rng rng(2008);
  const int six_days = 6 * kSamplesPerDay;
  for (int t = 0; t < six_days; ++t) {
    // Observed destinations out of c12: mostly c10, sometimes stay.
    // A light per-observation weight with forgetting keeps the posterior
    // a readable distribution (Figure 10 shows a soft bump, not a point
    // mass); the literal weight=1, forgetting=1 setting concentrates all
    // mass on the argmin-distance cell after this many samples.
    const std::size_t dest = rng.Bernoulli(0.7) ? c10 : c12;
    matrix.ObserveTransition(c12, dest, grid, kernel, 0.08, 0.99);
  }
  const auto posterior_row = matrix.RowDistribution(c12);

  TextTable table;
  table.SetHeader({"cell", "prior P(c12->cj)", "posterior P(c12->cj|D)"});
  for (std::size_t j = 0; j < grid.CellCount(); ++j) {
    table.Row()
        .Cell("c" + std::to_string(j + 1))
        .Percent(prior_row[j])
        .Percent(posterior_row[j])
        .Done();
  }
  table.Print(std::cout);
  std::cout << "Prior mode: c12 (self-transition highest, as in Figure 9)\n"
            << "Posterior mode: c" << matrix.ArgMax(c12) + 1
            << " (many c12->c10 transitions observed, as in Figure 10)\n";
}

void KernelAblation() {
  PrintSection(std::cout,
               "Ablation — prior row out of the center cell, by kernel");
  const Grid2D grid(IntervalList::Uniform(0.0, 3.0, 3),
                    IntervalList::Uniform(0.0, 3.0, 3));
  const TriangularKernel tri;
  const ExponentialKernel expo_euclid(2.0, CellMetric::kEuclidean);
  const ExponentialKernel expo_cheby(2.0, CellMetric::kChebyshev);

  TextTable table;
  table.SetHeader({"kernel", "self", "axial", "diagonal"});
  for (const DecayKernel* kernel :
       {static_cast<const DecayKernel*>(&tri),
        static_cast<const DecayKernel*>(&expo_euclid),
        static_cast<const DecayKernel*>(&expo_cheby)}) {
    const TransitionMatrix prior = TransitionMatrix::Prior(grid, *kernel);
    const auto row = prior.RowDistribution(4);  // center cell c5
    table.Row()
        .Cell(kernel->Describe())
        .Percent(row[4])
        .Percent(row[1])
        .Percent(row[0])
        .Done();
  }
  table.Print(std::cout);
  std::cout << "The triangular kernel reproduces the paper's 17.65 / 11.76 /"
               " 8.82 split;\nexponential kernels shift prior mass between"
               " axial and diagonal neighbors.\n";
}

}  // namespace

int main() {
  Figure5();
  Figures9And10();
  KernelAblation();
  return 0;
}
