// Figure 16 reproduction: Q scores over one test day (June 13) for
// models initialized from 1, 8 and 15 days of history.
//
// The paper: the 1-day model dips at peak hours; the 15-day model stays
// above 0.9 through peak and off-peak alike — more history that shares
// the online data's properties stabilizes the initial model.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/fitness.h"
#include "engine/measurement_graph.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 10;
  config.trace_days = 16;
  config.localization_fault = false;
  const PaperScenario base = MakeGroupScenario('A', config);
  // This figure studies normal-data predictability, so strip the June 13
  // problem injection as well.
  TraceSpec spec = base.spec;
  spec.faults.clear();
  const MeasurementFrame frame = GenerateTrace(spec);

  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame test = frame.SliceByTime(june13, june13 + kDay);

  const MeasurementGraph graph = MeasurementGraph::Neighborhood(frame, 1, 5);
  std::vector<PairId> pairs(graph.Pairs().begin(), graph.Pairs().end());
  if (pairs.size() > 12) pairs.resize(12);

  PrintSection(std::cout,
               "Figure 16 — Q scores for one day (6.13) by training size");
  TextTable table;
  table.SetHeader({"training set", "12am-6am", "6am-12pm", "12pm-6pm",
                   "6pm-12am", "day avg", "day min"});
  std::vector<double> day_avgs;
  for (int td : {1, 8, 15}) {
    const MeasurementFrame train = frame.SliceByTime(
        PaperTraceStart(), PaperTraceStart() + static_cast<Duration>(td) * kDay);

    // Aggregate Q_t across the sampled pairs.
    std::vector<std::vector<std::optional<double>>> runs;
    for (const PairId& pair : pairs) {
      runs.push_back(
          RunPair(train, test, pair.a, pair.b, DefaultModelConfig()).scores);
    }
    std::vector<std::optional<double>> q(test.SampleCount());
    double day_min = 1.0;
    ScoreAverager day_avg;
    for (std::size_t t = 0; t < test.SampleCount(); ++t) {
      double sum = 0.0;
      std::size_t n = 0;
      for (const auto& run : runs) {
        if (run[t]) {
          sum += *run[t];
          ++n;
        }
      }
      if (n) {
        q[t] = sum / static_cast<double>(n);
        day_avg.Add(*q[t]);
        day_min = std::min(day_min, *q[t]);
      }
    }
    const QuarterStats quarters =
        QuarterizeScores(q, june13, kPaperSamplePeriod);

    auto row = table.Row();
    row.Cell("5.29-" + PaperDay(PaperTraceStart() +
                                static_cast<Duration>(td - 1) * kDay) +
             " (" + std::to_string(td) + "d)");
    for (int quarter = 0; quarter < 4; ++quarter) {
      row.Num(quarters.mean[quarter], 4);
    }
    row.Num(day_avg.Mean(), 4);
    row.Num(day_min, 4);
    row.Done();
    day_avgs.push_back(day_avg.Mean());
  }
  table.Print(std::cout);

  std::cout << "\nPaper's Figure 16: the 1-day model drops when heavy"
               " workloads raise prediction\ncomplexity; the 15-day model"
               " stays above 0.9 during both peak and non-peak\nhours."
               " Here: day averages "
            << FormatDouble(day_avgs[0], 4) << " (1d) -> "
            << FormatDouble(day_avgs[1], 4) << " (8d) -> "
            << FormatDouble(day_avgs[2], 4) << " (15d).\n";
  return 0;
}
