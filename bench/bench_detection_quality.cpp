// Threshold sensitivity: how the fitness alarm bound trades detection
// against false alarms (a quantitative extension of the paper's
// qualitative Figure 12 reading), plus auto-calibration.
//
// Setup: the Group B scenario (anomalous jump at 2pm + level shift until
// 8pm on June 13). The focus pair's fitness series is swept over alarm
// thresholds and each operating point is scored window-level against the
// ground truth; finally the calibrated threshold (2% holdout FPR) is
// marked.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/sparkline.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/calibration.h"
#include "engine/evaluation.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 16;
  config.trace_days = 16;
  const PaperScenario scenario = MakeGroupScenario('B', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), june13 - kDay);
  const MeasurementFrame holdout =
      frame.SliceByTime(june13 - kDay, june13);  // clean calibration day
  const MeasurementFrame test = frame.SliceByTime(june13, june13 + kDay);

  const MeasurementId x = *frame.FindByName(scenario.focus_x);
  const MeasurementId y = *frame.FindByName(scenario.focus_y);

  // Train, calibrate on the clean held-out day, then score the test day.
  ModelConfig model_config = DefaultModelConfig();
  PairModel model = PairModel::Learn(train.Series(x).Values(),
                                     train.Series(y).Values(), model_config);
  const ThresholdCalibration calibration = CalibrateOnHoldout(
      model, holdout.Series(x).Values(), holdout.Series(y).Values(), 0.02);

  std::vector<std::optional<double>> scores(test.SampleCount());
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
    if (out.has_score) scores[t] = out.fitness;
  }

  PrintSection(std::cout, "Fitness over June 13 (Group B focus pair)");
  SparklineOptions spark;
  spark.width = 72;
  spark.lo = 0.0;
  spark.hi = 1.0;
  std::cout << Sparkline(std::span<const std::optional<double>>(scores),
                         spark)
            << "\n12am" << std::string(30, ' ') << "noon"
            << std::string(30, ' ') << "12am\n"
            << "ground truth: " << FaultTypeName(FaultType::kAnomalousJump)
            << " + level shift, "
            << FormatTimePoint(scenario.problem_start).substr(11) << "-"
            << FormatTimePoint(scenario.problem_end).substr(11) << "\n";

  const std::vector<LabeledWindow> truth = {
      {scenario.problem_start, scenario.problem_end}};
  const std::vector<double> thresholds = {0.2,  0.3,  0.4, 0.5,
                                          0.6,  0.7,  0.8, 0.9,
                                          calibration.fitness_threshold};
  const auto sweep = SweepThresholds(scores, june13, kPaperSamplePeriod,
                                     truth, thresholds, 1, kHour);

  PrintSection(std::cout, "Threshold sweep (window-level, 1h grace)");
  TextTable table;
  table.SetHeader({"threshold", "alarm windows", "detected", "false alarms",
                   "precision", "recall", "latency (min)"});
  for (const auto& point : sweep) {
    const bool calibrated = point.threshold == calibration.fitness_threshold;
    auto row = table.Row();
    row.Cell(FormatDouble(point.threshold, 3) +
             (calibrated ? " (calibrated @2% fpr)" : ""));
    row.Int(static_cast<long long>(point.outcome.alarm_windows));
    row.Int(static_cast<long long>(point.outcome.detected));
    row.Int(static_cast<long long>(point.outcome.false_alarms));
    row.Num(point.outcome.Precision(), 2);
    row.Num(point.outcome.Recall(), 2);
    row.Cell(point.outcome.mean_latency_seconds
                 ? FormatDouble(*point.outcome.mean_latency_seconds / 60.0, 0)
                 : "-");
    row.Done();
  }
  table.Print(std::cout);
  std::cout << "\nLow thresholds only catch the deepest spike (high"
               " precision); high thresholds\nadd false-alarm windows. The"
               " auto-calibrated bound (2% holdout FPR) picks an\noperating"
               " point on that curve without manual tuning — full recall,"
               " with the\nfalse-alarm cost the FPR target implies.\n";
  return 0;
}
