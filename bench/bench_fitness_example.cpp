// Figure 11 reproduction: the worked fitness-score example.
//
// Given the transition probabilities from cell c4 over a 6-cell grid, sort
// the cells (the ranking function pi), and compute the fitness score
// Q = 1 - (pi - 1) / s for a landing in each cell. The paper's printed
// result: ranks {5,2,3,1,4,6} and scores {0.3333, 0.8333, 0.6667, 1.0000,
// 0.5000, 0.1667}.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/fitness.h"

int main() {
  using namespace pmcorr;

  // The probability row printed in Figure 11 (transitions out of c4).
  const double probs[6] = {0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094};
  const int cells = 6;

  PrintSection(std::cout, "Figure 11 — fitness score computation");
  std::cout << "Transition probabilities from cell c4 over a 6-cell grid\n";

  TextTable table;
  table.SetHeader({"cell", "P(c4 -> cj)", "rank pi(cj)", "fitness Q"});
  for (int j = 0; j < cells; ++j) {
    std::size_t rank = 1;
    for (double p : probs) {
      if (p > probs[j]) ++rank;
    }
    table.Row()
        .Cell("c" + std::to_string(j + 1))
        .Percent(probs[j])
        .Int(static_cast<long long>(rank))
        .Num(RankFitness(rank, cells), 4)
        .Done();
  }
  table.Print(std::cout);

  std::cout << "\nPaper's Figure 11: ranks {5,2,3,1,4,6}, "
               "scores {0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667}\n"
            << "Interpretation: the observed landing in the modal cell (c4)"
               " scores 1; the\nleast probable cell (c6) scores 1/6.\n";
  return 0;
}
