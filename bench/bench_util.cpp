#include "bench_util.h"

#include "core/fitness.h"

namespace pmcorr::bench {

ModelConfig DefaultModelConfig() {
  ModelConfig config;
  config.partition.units = 50;
  config.partition.max_intervals = 14;
  config.lambda1 = 3.0;
  config.lambda2 = 3.0;
  return config;
}

PairRun RunPair(const MeasurementFrame& train, const MeasurementFrame& test,
                MeasurementId x, MeasurementId y, const ModelConfig& config) {
  PairModel model = PairModel::Learn(train.Series(x).Values(),
                                     train.Series(y).Values(), config);
  PairRun run;
  run.scores.resize(test.SampleCount());
  ScoreAverager avg;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
    if (out.has_score) {
      run.scores[t] = out.fitness;
      avg.Add(out.fitness);
    }
    if (out.outlier) ++run.outliers;
    if (out.extended_grid) ++run.extensions;
  }
  run.average = avg.Mean();
  return run;
}

const char* const kQuarterLabels[4] = {"12am-6am", "6am-12pm", "12pm-6pm",
                                       "6pm-12am"};

int QuarterOf(TimePoint tp) {
  return static_cast<int>(SecondsIntoDay(tp) / (6 * kHour));
}

QuarterStats QuarterizeScores(const std::vector<std::optional<double>>& scores,
                              TimePoint start, Duration period) {
  QuarterStats stats;
  double sum[4] = {0, 0, 0, 0};
  std::size_t n[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (!scores[i]) continue;
    const int q = QuarterOf(start + static_cast<Duration>(i) * period);
    sum[q] += *scores[i];
    if (n[q] == 0 || *scores[i] < stats.min[q]) stats.min[q] = *scores[i];
    ++n[q];
  }
  for (int q = 0; q < 4; ++q) {
    if (n[q] > 0) {
      stats.mean[q] = sum[q] / static_cast<double>(n[q]);
    } else {
      stats.min[q] = -1;
    }
  }
  return stats;
}

std::string PaperDay(TimePoint tp) { return FormatPaperDate(ToCivilDate(tp)); }

}  // namespace pmcorr::bench
