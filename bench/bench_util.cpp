#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "core/fitness.h"

namespace pmcorr::bench {

ModelConfig DefaultModelConfig() {
  ModelConfig config;
  config.partition.units = 50;
  config.partition.max_intervals = 14;
  config.lambda1 = 3.0;
  config.lambda2 = 3.0;
  return config;
}

PairRun RunPair(const MeasurementFrame& train, const MeasurementFrame& test,
                MeasurementId x, MeasurementId y, const ModelConfig& config) {
  PairModel model = PairModel::Learn(train.Series(x).Values(),
                                     train.Series(y).Values(), config);
  PairRun run;
  run.scores.resize(test.SampleCount());
  ScoreAverager avg;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    const StepOutcome out = model.Step(test.Value(x, t), test.Value(y, t));
    if (out.has_score) {
      run.scores[t] = out.fitness;
      avg.Add(out.fitness);
    }
    if (out.outlier) ++run.outliers;
    if (out.extended_grid) ++run.extensions;
  }
  run.average = avg.Mean();
  return run;
}

const char* const kQuarterLabels[4] = {"12am-6am", "6am-12pm", "12pm-6pm",
                                       "6pm-12am"};

int QuarterOf(TimePoint tp) {
  return static_cast<int>(SecondsIntoDay(tp) / (6 * kHour));
}

QuarterStats QuarterizeScores(const std::vector<std::optional<double>>& scores,
                              TimePoint start, Duration period) {
  QuarterStats stats;
  double sum[4] = {0, 0, 0, 0};
  std::size_t n[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (!scores[i]) continue;
    const int q = QuarterOf(start + static_cast<Duration>(i) * period);
    sum[q] += *scores[i];
    if (n[q] == 0 || *scores[i] < stats.min[q]) stats.min[q] = *scores[i];
    ++n[q];
  }
  for (int q = 0; q < 4; ++q) {
    if (n[q] > 0) {
      stats.mean[q] = sum[q] / static_cast<double>(n[q]);
    } else {
      stats.min[q] = -1;
    }
  }
  return stats;
}

std::string PaperDay(TimePoint tp) { return FormatPaperDate(ToCivilDate(tp)); }

namespace {

// Shortest-round-trip double encoding; JSON has no Inf/NaN literals, so
// those degrade to null.
std::string EncodeNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string EncodeString(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {}

void BenchJson::Set(const std::string& key, double value) {
  entries_.emplace_back(key, EncodeNumber(value));
}

void BenchJson::Set(const std::string& key, std::int64_t value) {
  entries_.emplace_back(key, std::to_string(value));
}

void BenchJson::Set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, EncodeString(value));
}

std::string BenchJson::Write() const {
  const std::string path = BenchJsonDir() + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n  \"bench\": " << EncodeString(name_);
  for (const auto& [key, value] : entries_) {
    out << ",\n  " << EncodeString(key) << ": " << value;
  }
  out << "\n}\n";
  return out ? path : "";
}

std::string BenchJsonDir() {
  if (const char* dir = std::getenv("PMCORR_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    return dir;
  }
#ifdef PMCORR_REPO_ROOT
  return PMCORR_REPO_ROOT;
#else
  return ".";
#endif
}

}  // namespace pmcorr::bench
