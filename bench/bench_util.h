// Shared helpers for the experiment benchmarks: scenario slicing,
// pair-model evaluation runs, and quarter-of-day aggregation matching the
// x-axes of the paper's Figures 12 and 16.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/model.h"
#include "telemetry/scenarios.h"
#include "timeseries/frame.h"

namespace pmcorr::bench {

/// Default model configuration used by all experiment benches (kept in
/// one place so every figure runs the same model).
ModelConfig DefaultModelConfig();

/// Evaluation trace of one pair model over a test frame.
struct PairRun {
  /// Q^{a,b} per test sample (disengaged samples nullopt).
  std::vector<std::optional<double>> scores;
  /// Mean over engaged scores.
  double average = 0.0;
  std::size_t outliers = 0;
  std::size_t extensions = 0;
};

/// Learns a model for (x, y) on `train` and steps it through `test`.
PairRun RunPair(const MeasurementFrame& train, const MeasurementFrame& test,
                MeasurementId x, MeasurementId y, const ModelConfig& config);

/// The paper's four x-axis buckets in Figures 12/16.
extern const char* const kQuarterLabels[4];  // "12am-6am" ... "6pm-12am"

/// Index 0..3 of the quarter containing `tp`.
int QuarterOf(TimePoint tp);

/// Per-quarter mean and min of engaged scores; quarters with no engaged
/// samples report mean/min = -1.
struct QuarterStats {
  double mean[4] = {-1, -1, -1, -1};
  double min[4] = {-1, -1, -1, -1};
};
QuarterStats QuarterizeScores(const std::vector<std::optional<double>>& scores,
                              TimePoint start, Duration period);

/// "6.13" style label for a TimePoint's date.
std::string PaperDay(TimePoint tp);

}  // namespace pmcorr::bench
