// Shared helpers for the experiment benchmarks: scenario slicing,
// pair-model evaluation runs, and quarter-of-day aggregation matching the
// x-axes of the paper's Figures 12 and 16.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/model.h"
#include "telemetry/scenarios.h"
#include "timeseries/frame.h"

namespace pmcorr::bench {

/// Default model configuration used by all experiment benches (kept in
/// one place so every figure runs the same model).
ModelConfig DefaultModelConfig();

/// Evaluation trace of one pair model over a test frame.
struct PairRun {
  /// Q^{a,b} per test sample (disengaged samples nullopt).
  std::vector<std::optional<double>> scores;
  /// Mean over engaged scores.
  double average = 0.0;
  std::size_t outliers = 0;
  std::size_t extensions = 0;
};

/// Learns a model for (x, y) on `train` and steps it through `test`.
PairRun RunPair(const MeasurementFrame& train, const MeasurementFrame& test,
                MeasurementId x, MeasurementId y, const ModelConfig& config);

/// The paper's four x-axis buckets in Figures 12/16.
extern const char* const kQuarterLabels[4];  // "12am-6am" ... "6pm-12am"

/// Index 0..3 of the quarter containing `tp`.
int QuarterOf(TimePoint tp);

/// Per-quarter mean and min of engaged scores; quarters with no engaged
/// samples report mean/min = -1.
struct QuarterStats {
  double mean[4] = {-1, -1, -1, -1};
  double min[4] = {-1, -1, -1, -1};
};
QuarterStats QuarterizeScores(const std::vector<std::optional<double>>& scores,
                              TimePoint start, Duration period);

/// "6.13" style label for a TimePoint's date.
std::string PaperDay(TimePoint tp);

/// --- Machine-readable benchmark results --------------------------------
///
/// The experiment binaries historically only printed tables; BenchJson
/// accumulates flat name -> value metrics and writes them as
/// `BENCH_<name>.json` so the perf trajectory is tracked across PRs
/// (CI uploads the files as artifacts). Keys keep insertion order.
class BenchJson {
 public:
  explicit BenchJson(std::string name);

  void Set(const std::string& key, double value);
  void Set(const std::string& key, std::int64_t value);
  void Set(const std::string& key, const std::string& value);

  /// Writes `BENCH_<name>.json` into BenchJsonDir(). Returns the path
  /// written, or an empty string when the file could not be opened.
  std::string Write() const;

 private:
  std::string name_;
  // (key, pre-encoded JSON value) in insertion order.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Directory BENCH_*.json files land in: $PMCORR_BENCH_JSON_DIR when set,
/// otherwise the repository root baked in at configure time (benches are
/// usually run from the build tree, but the trajectory files belong next
/// to CHANGES.md).
std::string BenchJsonDir();

}  // namespace pmcorr::bench
