// Section 4.2 in-text statistic: the "spatial closeness tendency".
//
// The paper counts transitions in two days of measurement values: 701
// total, of which 412 stay inside their cell and 280 move to the closest
// neighbor, with counts falling as cell distance grows. This bench
// reproduces the analysis on two days of a synthetic Group A pair.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/model.h"
#include "core/transition_matrix.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 12;
  config.trace_days = 2;  // the paper checks two days' measurement values
  const PaperScenario scenario = MakeGroupScenario('A', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);

  const MeasurementId x = *frame.FindByName(scenario.focus_x);
  const MeasurementId y = *frame.FindByName(scenario.focus_y);

  // Learn on the two days; the learned matrix's empirical counts are the
  // observed transitions. Interval granularity matches the paper's small
  // illustrative grids.
  ModelConfig model_config = DefaultModelConfig();
  model_config.partition.max_intervals = 10;
  const PairModel model = PairModel::Learn(frame.Series(x).Values(),
                                           frame.Series(y).Values(),
                                           model_config);
  const auto hist = TransitionDistanceHistogram(model.Matrix(), model.Grid());

  std::uint64_t total = 0;
  for (std::uint64_t c : hist) total += c;

  PrintSection(std::cout,
               "Section 4.2 — transition counts by cell distance (2 days)");
  std::cout << "Pair: " << scenario.focus_x << " x " << scenario.focus_y
            << "\nGrid: " << model.Grid().Describe() << "\n";

  TextTable table;
  table.SetHeader({"cell distance", "transitions", "share"});
  for (std::size_t d = 0; d < hist.size(); ++d) {
    if (hist[d] == 0 && d > 3) continue;
    table.Row()
        .Cell(d == 0 ? "0 (inside the cell)"
                     : d == 1 ? "1 (closest neighbor)" : std::to_string(d))
        .Int(static_cast<long long>(hist[d]))
        .Percent(total ? static_cast<double>(hist[d]) /
                             static_cast<double>(total)
                       : 0.0)
        .Done();
  }
  table.Row().Cell("total").Int(static_cast<long long>(total)).Cell("").Done();
  table.Print(std::cout);

  const double in_cell =
      total ? static_cast<double>(hist[0]) / static_cast<double>(total) : 0;
  const double neighbor =
      total && hist.size() > 1
          ? static_cast<double>(hist[1]) / static_cast<double>(total)
          : 0;
  std::cout << "\nPaper (proprietary traces): 701 transitions, 412 in-cell"
               " (59%), 280 to the\nclosest neighbor (40%), falling with"
               " distance.\nOurs: " << total << " transitions, "
            << static_cast<int>(in_cell * 100) << "% in-cell, "
            << static_cast<int>(neighbor * 100)
            << "% closest-neighbor — the spatial closeness tendency holds,\n"
               "which is the justification for the decaying prior.\n";
  return 0;
}
