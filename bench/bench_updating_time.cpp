// Figure 13(b) reproduction: online model-updating time.
//
// The paper: with 8/15-day training sets, processing >4000 monitoring
// points takes under 10 seconds (< 2.5 ms/sample); with a 1-day training
// set the model updates far more often (grid extensions + matrix growth)
// and the worst case stays under ~23 ms/sample — all well below the
// 6-minute sampling period.
//
// google-benchmark measures the per-sample Step() cost for models
// initialized from 1, 8 and 15 days of history.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/monitor.h"
#include "io/monitor_io.h"
#include "telemetry/generator.h"

namespace {

using namespace pmcorr;
using namespace pmcorr::bench;

struct Dataset {
  MeasurementFrame frame{0, kPaperSamplePeriod};
  MeasurementId x;
  MeasurementId y;
};

const Dataset& SharedDataset() {
  static const Dataset dataset = [] {
    ScenarioConfig config;
    config.machine_count = 10;
    config.trace_days = 28;
    config.localization_fault = false;
    const PaperScenario scenario = MakeGroupScenario('A', config);
    Dataset d;
    d.frame = GenerateTrace(scenario.spec);
    d.x = *d.frame.FindByName(scenario.focus_x);
    d.y = *d.frame.FindByName(scenario.focus_y);
    return d;
  }();
  return dataset;
}

// One adaptive online step (score + update), for a model trained on
// `state.range(0)` days of history.
void BM_AdaptiveStep(benchmark::State& state) {
  const Dataset& d = SharedDataset();
  const auto train_days = static_cast<Duration>(state.range(0));
  const TimePoint start = PaperTraceStart();
  const MeasurementFrame train =
      d.frame.SliceByTime(start, start + train_days * kDay);
  const MeasurementFrame test = d.frame.SliceByTime(
      PaperTestStart(), PaperTestStart() + 13 * kDay);

  PairModel model = PairModel::Learn(train.Series(d.x).Values(),
                                     train.Series(d.y).Values(),
                                     DefaultModelConfig());
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Step(test.Value(d.x, t), test.Value(d.y, t)));
    t = (t + 1) % test.SampleCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["grid_cells"] =
      static_cast<double>(model.Grid().CellCount());
}
BENCHMARK(BM_AdaptiveStep)->Arg(1)->Arg(8)->Arg(15)
    ->Unit(benchmark::kMicrosecond);

// The full Figure 13(b) quantity: seconds to process an entire test set
// of > 4000 points (13 days at 6-minute sampling = 3120; we also time the
// 4320-point variant from 18 days to match "more than 4,000").
void BM_ProcessTestSet(benchmark::State& state) {
  const Dataset& d = SharedDataset();
  const auto train_days = static_cast<Duration>(state.range(0));
  const TimePoint start = PaperTraceStart();
  const MeasurementFrame train =
      d.frame.SliceByTime(start, start + train_days * kDay);
  // 4320 samples (18 days), wrapping over the 13-day test window.
  const MeasurementFrame test = d.frame.SliceByTime(
      PaperTestStart(), PaperTestStart() + 13 * kDay);
  const std::size_t points = 4320;

  for (auto _ : state) {
    state.PauseTiming();
    PairModel model = PairModel::Learn(train.Series(d.x).Values(),
                                       train.Series(d.y).Values(),
                                       DefaultModelConfig());
    state.ResumeTiming();
    for (std::size_t i = 0; i < points; ++i) {
      const std::size_t t = i % test.SampleCount();
      benchmark::DoNotOptimize(
          model.Step(test.Value(d.x, t), test.Value(d.y, t)));
    }
  }
  // items_per_second's reciprocal is the per-sample updating time the
  // paper plots; the whole-set wall time is this benchmark's Time column.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * points));
}
BENCHMARK(BM_ProcessTestSet)->Arg(1)->Arg(8)->Arg(15)
    ->Unit(benchmark::kMillisecond);

// --- Whole-system engine: serial Step loop vs pair-major batched Run. ---
//
// The per-pair numbers above bound one model; a production monitor
// drives hundreds of pair models per sample. The serial path pays a
// thread-pool fork/join barrier per sample; batched Run pays one per
// ~thousand samples, so the gap below is the cost of those barriers.
//
// Both benchmarks use real (wall) time for iteration policy and the
// reported rate — most of the work happens on pool threads, so the
// default main-thread CPU clock would wildly overstate throughput — and
// process CPU time so the CPU column includes the workers.

struct SystemDataset {
  MeasurementFrame train{0, kPaperSamplePeriod};
  MeasurementFrame test{0, kPaperSamplePeriod};
  MeasurementGraph graph;
};

const SystemDataset& SharedSystemDataset() {
  static const SystemDataset dataset = [] {
    ScenarioConfig config;
    config.machine_count = 10;
    config.trace_days = 18;
    config.localization_fault = false;
    const PaperScenario scenario = MakeGroupScenario('A', config);
    const MeasurementFrame frame = GenerateTrace(scenario.spec);
    SystemDataset d;
    const TimePoint start = PaperTraceStart();
    d.train = frame.SliceByTime(start, start + 15 * kDay);
    d.test = frame.SliceByTime(start + 15 * kDay, start + 17 * kDay);
    d.graph = MeasurementGraph::FullMesh(d.train.MeasurementCount());
    return d;
  }();
  return dataset;
}

// The learned engine state, serialized once; every benchmark iteration
// restores from it so adaptation (grid extensions, matrix growth) during
// one iteration cannot change what the next iteration measures.
const std::string& SystemCheckpoint() {
  static const std::string checkpoint = [] {
    const SystemDataset& d = SharedSystemDataset();
    MonitorConfig config;
    config.model = DefaultModelConfig();
    config.model.partition.max_intervals = 12;
    const SystemMonitor monitor(d.train, d.graph, config);
    std::ostringstream out;
    SaveSystemMonitor(monitor, out);
    return out.str();
  }();
  return checkpoint;
}

std::unique_ptr<SystemMonitor> RestoreSystemMonitor(std::size_t threads) {
  std::istringstream in(SystemCheckpoint());
  return LoadSystemMonitor(in, threads);
}

// The pre-batching engine: one fork/join per sample via Step().
void BM_MonitorStepLoop(benchmark::State& state) {
  const SystemDataset& d = SharedSystemDataset();
  std::vector<double> values(d.test.MeasurementCount());
  for (auto _ : state) {
    state.PauseTiming();
    const auto monitor =
        RestoreSystemMonitor(static_cast<std::size_t>(state.range(0)));
    state.ResumeTiming();
    for (std::size_t t = 0; t < d.test.SampleCount(); ++t) {
      for (std::size_t a = 0; a < values.size(); ++a) {
        values[a] =
            d.test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
      }
      benchmark::DoNotOptimize(monitor->Step(values, d.test.TimeAt(t)));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * d.test.SampleCount() * d.graph.PairCount()));
  state.counters["pairs"] = static_cast<double>(d.graph.PairCount());
}
BENCHMARK(BM_MonitorStepLoop)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime()->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

// Pair-major batched Run: each worker sweeps its shard of pairs across a
// whole batch of samples before the deterministic merge.
void BM_MonitorBatchedRun(benchmark::State& state) {
  const SystemDataset& d = SharedSystemDataset();
  for (auto _ : state) {
    state.PauseTiming();
    const auto monitor =
        RestoreSystemMonitor(static_cast<std::size_t>(state.range(0)));
    state.ResumeTiming();
    benchmark::DoNotOptimize(monitor->Run(d.test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * d.test.SampleCount() * d.graph.PairCount()));
  state.counters["pairs"] = static_cast<double>(d.graph.PairCount());
}
BENCHMARK(BM_MonitorBatchedRun)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime()->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

// Model initialization (offline learning) cost for context.
void BM_Learn(benchmark::State& state) {
  const Dataset& d = SharedDataset();
  const auto train_days = static_cast<Duration>(state.range(0));
  const TimePoint start = PaperTraceStart();
  const MeasurementFrame train =
      d.frame.SliceByTime(start, start + train_days * kDay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairModel::Learn(train.Series(d.x).Values(),
                                              train.Series(d.y).Values(),
                                              DefaultModelConfig()));
  }
}
BENCHMARK(BM_Learn)->Arg(1)->Arg(8)->Arg(15)->Unit(benchmark::kMillisecond);

// The usual console output, plus a capture of every finished run into a
// BenchJson so the perf trajectory lands in BENCH_updating_time.json at
// the repo root (per-iteration times are recorded in nanoseconds
// regardless of each benchmark's display unit).
class ConsoleAndJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit ConsoleAndJsonReporter(BenchJson& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      json_.Set(name + ".real_ns_per_iter",
                run.real_accumulated_time / iters * 1e9);
      json_.Set(name + ".cpu_ns_per_iter",
                run.cpu_accumulated_time / iters * 1e9);
      json_.Set(name + ".iterations",
                static_cast<std::int64_t>(run.iterations));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJson& json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJson json("updating_time");
  ConsoleAndJsonReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string path = json.Write();
  if (path.empty()) {
    std::cerr << "warning: could not write BENCH_updating_time.json\n";
  } else {
    std::cout << "wrote " << path << "\n";
  }
  benchmark::Shutdown();
  return 0;
}
