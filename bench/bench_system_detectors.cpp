// System-level comparison: the paper's three-level fitness hierarchy vs
// a PCA residual-subspace detector (the reference [7] family) on the
// same fault day.
//
// Both are "one score for the whole system" detectors; the comparison
// highlights (a) both catch the injected fault, and (b) the drill-down
// difference — the TPM walks Q -> Q^a -> Q^{a,b} straight to the faulty
// machine, while PCA diagnosis relies on residual-contribution
// heuristics.
#include <algorithm>
#include <iostream>
#include <optional>
#include <vector>

#include "baselines/subspace.h"
#include "bench_util.h"
#include "common/sparkline.h"
#include "common/string_util.h"
#include "common/table.h"
#include "engine/alarm.h"
#include "engine/localizer.h"
#include "engine/monitor.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 14;
  config.trace_days = 16;
  config.localization_fault = false;  // study the June 13 jump in isolation
  const PaperScenario scenario = MakeGroupScenario('A', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test = frame.SliceByTime(june13, june13 + kDay);

  PrintSection(std::cout, "System-level detectors on the June 13 fault day");
  std::cout << "ground truth: fault on machine "
            << scenario.problem_machine.value << " ("
            << FormatTimePoint(scenario.problem_start).substr(11) << "-"
            << FormatTimePoint(scenario.problem_end).substr(11) << "), "
            << frame.MeasurementCount() << " measurements\n";

  // --- TPM engine. ---
  MonitorConfig engine;
  engine.model = DefaultModelConfig();
  engine.model.partition.max_intervals = 10;
  engine.threads = 2;
  SystemMonitor monitor(train, MeasurementGraph::Neighborhood(train, 2, 5),
                        engine);
  std::vector<std::optional<double>> q(test.SampleCount());
  // Level-2 composite: the worst measurement score Q^a at each instant.
  // A single faulty machine barely moves the fleet-wide mean Q — that is
  // exactly why the paper provides the drill-down hierarchy — so the
  // alerting signal here is the minimum over measurements.
  std::vector<std::optional<double>> worst_qa(test.SampleCount());
  std::vector<double> values(test.MeasurementCount());
  std::vector<SystemSnapshot> snapshots;
  snapshots.reserve(test.SampleCount());
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    for (std::size_t a = 0; a < values.size(); ++a) {
      values[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    snapshots.push_back(monitor.Step(values, test.TimeAt(t)));
    q[t] = snapshots.back().system_score;
    for (const auto& qa : snapshots.back().measurement_scores) {
      if (!qa) continue;
      if (!worst_qa[t] || *qa < *worst_qa[t]) worst_qa[t] = *qa;
    }
  }

  // --- PCA subspace. ---
  SubspaceConfig pca_config;
  pca_config.components = 4;
  const SubspaceDetector pca = SubspaceDetector::Fit(train, pca_config);
  std::vector<std::optional<double>> spe(test.SampleCount());
  std::vector<double> contributions_at_worst;
  double worst_spe = -1.0;
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    for (std::size_t a = 0; a < values.size(); ++a) {
      values[a] = test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
    }
    const double s = pca.Spe(values);
    spe[t] = s;
    if (s > worst_spe) {
      worst_spe = s;
      contributions_at_worst = pca.ResidualContributions(values);
    }
  }

  SparklineOptions spark;
  spark.width = 72;
  std::cout << "\nTPM system fitness Q (down = anomalous):\n  "
            << Sparkline(std::span<const std::optional<double>>(q), spark)
            << "\nTPM worst measurement Q^a (drill-down level; down ="
               " anomalous):\n  "
            << Sparkline(std::span<const std::optional<double>>(worst_qa),
                         spark)
            << "\nPCA residual SPE (up = anomalous):\n  "
            << Sparkline(std::span<const std::optional<double>>(spe), spark)
            << "\n  12am" << std::string(29, ' ') << "noon"
            << std::string(29, ' ') << "12am\n";

  // Detection: TPM low worst-Q^a windows vs PCA high-SPE windows.
  const auto q_windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(worst_qa), june13,
      kPaperSamplePeriod, 0.5, 1);
  std::vector<std::optional<double>> neg_spe(spe.size());
  for (std::size_t i = 0; i < spe.size(); ++i) {
    if (spe[i]) neg_spe[i] = -*spe[i];
  }
  const auto spe_windows = ExtractLowScoreWindows(
      std::span<const std::optional<double>>(neg_spe), june13,
      kPaperSamplePeriod, -pca.Threshold(), 2);

  TextTable table;
  table.SetHeader({"detector", "alarm windows", "overlaps fault",
                   "drill-down"});
  const bool tpm_hit = AnyWindowOverlaps(q_windows, scenario.problem_start,
                                         scenario.problem_end);
  const bool pca_hit = AnyWindowOverlaps(spe_windows, scenario.problem_start,
                                         scenario.problem_end);

  // Drill-down the way an operator would: average Q^a over the samples
  // inside the alarming window that overlaps the incident (fall back to
  // the whole day when nothing fired).
  std::vector<ScoreAverager> incident_avgs(test.MeasurementCount());
  const ScoreWindow* incident_window = nullptr;
  for (const ScoreWindow& w : q_windows) {
    if (w.start < scenario.problem_end && scenario.problem_start < w.end) {
      incident_window = &w;
      break;
    }
  }
  for (std::size_t t = 0; t < snapshots.size(); ++t) {
    if (incident_window != nullptr &&
        (t < incident_window->first_sample ||
         t > incident_window->last_sample)) {
      continue;
    }
    for (std::size_t a = 0; a < incident_avgs.size(); ++a) {
      incident_avgs[a].Add(snapshots[t].measurement_scores[a]);
    }
  }
  const auto ranking = ScoreMachines(monitor.Infos(), incident_avgs);
  const std::string tpm_suspect =
      ranking.empty() ? "-"
                      : "machine " + std::to_string(
                                         ranking.front().machine.value);
  std::size_t top_contributor = 0;
  for (std::size_t a = 1; a < contributions_at_worst.size(); ++a) {
    if (contributions_at_worst[a] >
        contributions_at_worst[top_contributor]) {
      top_contributor = a;
    }
  }
  const std::string pca_suspect =
      "machine " +
      std::to_string(
          monitor.Infos()[top_contributor].machine.value) +
      " (residual heuristic)";

  table.Row()
      .Cell("TPM worst Q^a (paper, level 2)")
      .Int(static_cast<long long>(q_windows.size()))
      .Cell(tpm_hit ? "yes" : "NO")
      .Cell(tpm_suspect)
      .Done();
  table.Row()
      .Cell("PCA residual subspace [7]")
      .Int(static_cast<long long>(spe_windows.size()))
      .Cell(pca_hit ? "yes" : "NO")
      .Cell(pca_suspect)
      .Done();
  std::cout << "\n";
  table.Print(std::cout);

  const bool tpm_correct = !ranking.empty() && ranking.front().machine ==
                                                   scenario.problem_machine;
  const bool pca_correct = monitor.Infos()[top_contributor].machine ==
                           scenario.problem_machine;
  std::cout << "\nfaulty machine identified: TPM "
            << (tpm_correct ? "yes" : "NO") << ", PCA residual heuristic "
            << (pca_correct ? "yes" : "NO")
            << "\nBoth system-level detectors see the fault; the TPM"
               " additionally carries the\npaper's built-in drill-down"
               " (Q -> Q^a -> machine) with per-pair explanations.\n";
  return 0;
}
