// Figure 12 reproduction: fitness scores for the three focus pairs on the
// June 13 test day, with the ground-truth problems injected in the
// morning (Group A) and the afternoon (Groups B and C).
//
// The paper's signature: a deep downward spike in the fitness score
// during the problem window, recovery afterwards.
#include <iostream>

#include "bench_util.h"
#include "common/sparkline.h"
#include "common/table.h"
#include "engine/alarm.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 20;
  config.trace_days = 16;  // May 29 .. June 13 inclusive

  PrintSection(std::cout,
               "Figure 12 — fitness scores when system problems occur");

  TextTable table;
  table.SetHeader({"group", "12am-6am", "6am-12pm", "12pm-6pm", "6pm-12am",
                   "fault window", "detected"});
  for (char g : {'A', 'B', 'C'}) {
    const PaperScenario scenario = MakeGroupScenario(g, config);
    const MeasurementFrame frame = GenerateTrace(scenario.spec);
    const TimePoint june13 = PaperTestStart();
    const MeasurementFrame train =
        frame.SliceByTime(PaperTraceStart(), june13);
    const MeasurementFrame test =
        frame.SliceByTime(june13, june13 + kDay);

    const MeasurementId x = *frame.FindByName(scenario.focus_x);
    const MeasurementId y = *frame.FindByName(scenario.focus_y);
    const PairRun run = RunPair(train, test, x, y, DefaultModelConfig());
    const QuarterStats quarters =
        QuarterizeScores(run.scores, june13, kPaperSamplePeriod);

    const auto windows = ExtractLowScoreWindows(
        std::span<const std::optional<double>>(run.scores), june13,
        kPaperSamplePeriod, 0.55);
    // One hour of grace on both sides: the jump into the anomalous state
    // and the recovery transition out of it are themselves improbable
    // transitions and commonly carry the deepest spike (the paper's
    // Group B narration counts the post-jump disturbance as part of the
    // event).
    const bool detected =
        AnyWindowOverlaps(windows, scenario.problem_start - kHour,
                          scenario.problem_end + kHour);

    auto row = table.Row();
    row.Cell(std::string("Group ") + g);
    for (int q = 0; q < 4; ++q) row.Num(quarters.min[q], 3);
    row.Cell(FormatTimePoint(scenario.problem_start).substr(11) + "-" +
             FormatTimePoint(scenario.problem_end).substr(11));
    row.Cell(detected ? "yes" : "NO");
    row.Done();

    SparklineOptions spark;
    spark.width = 72;
    spark.lo = 0.0;
    spark.hi = 1.0;
    std::cout << "Group " << g << ": pair " << scenario.focus_x << " x "
              << scenario.focus_y << "\n  "
              << Sparkline(std::span<const std::optional<double>>(run.scores),
                           spark)
              << "\n  12am" << std::string(29, ' ') << "noon"
              << std::string(29, ' ') << "12am\n";
  }
  std::cout << "\nMinimum fitness score per quarter of June 13 "
               "(1.0 = perfectly predicted):\n";
  table.Print(std::cout);
  std::cout
      << "\nPaper's Figure 12: the deep downward spike falls in the 6am-12pm"
         " quarter for\nGroup A and in the 12pm-6pm / 6pm-12am quarters for"
         " Groups B and C. 'detected'\nmeans a sub-0.55 fitness window"
         " overlaps the injected ground-truth fault.\n";
  return 0;
}
