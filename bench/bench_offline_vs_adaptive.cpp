// Figure 13(a) reproduction: average fitness score, offline vs adaptive,
// across training-set sizes {1, 8, 15} days and test-set sizes
// {1, 5, 9, 13} days (the paper's exact splits of the May 29 - June 27
// trace).
//
// Expected shape: adaptive >= offline (largest gap with 1-day training);
// scores rise with test-set size; typical values 0.8 - 0.98.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/fitness.h"
#include "engine/measurement_graph.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 12;
  config.trace_days = 28;  // May 29 .. June 25
  config.localization_fault = false;  // this figure studies normal data
  PaperScenario scenario = MakeGroupScenario('A', config);
  // Give the workload a pronounced month-scale growth trend. Adaptive vs
  // offline only separates when the distribution actually evolves between
  // the training snapshot and the test period — the situation the paper's
  // online updating is built for (Section 4.1 "Update").
  scenario.spec.workload.drift_fraction = 0.45;
  const MeasurementFrame frame = GenerateTrace(scenario.spec);

  // A sample of pairs standing in for the paper's "all pairs" average.
  const MeasurementGraph graph = MeasurementGraph::Neighborhood(frame, 1, 42);
  std::vector<PairId> pairs(graph.Pairs().begin(), graph.Pairs().end());
  if (pairs.size() > 16) pairs.resize(16);

  const TimePoint trace_start = PaperTraceStart();
  const TimePoint test_start = PaperTestStart();
  const int train_days[] = {1, 8, 15};
  const int test_days[] = {1, 5, 9, 13};

  PrintSection(std::cout,
               "Figure 13(a) — average fitness score, offline vs adaptive");
  std::cout << "Group A, " << pairs.size()
            << " measurement pairs, training from 5.29, testing from 6.13\n";

  TextTable table;
  table.SetHeader({"train", "method", "test 1d (6.13)", "test 5d (-6.17)",
                   "test 9d (-6.21)", "test 13d (-6.25)"});
  double gap_by_train[3] = {0, 0, 0};
  int train_index = 0;
  for (int td : train_days) {
    const MeasurementFrame train = frame.SliceByTime(
        trace_start, trace_start + static_cast<Duration>(td) * kDay);
    double adaptive_first = 0.0, offline_first = 0.0;
    for (bool adaptive : {false, true}) {
      auto row = table.Row();
      row.Cell(std::to_string(td) + (td == 1 ? " day" : " days"));
      row.Cell(adaptive ? "adaptive" : "offline");
      for (int ed : test_days) {
        const MeasurementFrame test = frame.SliceByTime(
            test_start, test_start + static_cast<Duration>(ed) * kDay);
        ModelConfig model_config = DefaultModelConfig();
        model_config.adaptive = adaptive;
        // A light per-observation weight with mild forgetting: the online
        // posterior tracks evolution without over-committing to the most
        // recent destinations (ablated in /tmp-style probes; the literal
        // w=1, rho=1 update trails this by ~0.005 fitness).
        model_config.likelihood_weight = 0.3;
        model_config.forgetting = 0.995;
        ScoreAverager avg;
        for (const PairId& pair : pairs) {
          const PairRun run =
              RunPair(train, test, pair.a, pair.b, model_config);
          avg.Add(run.average);
        }
        row.Num(avg.Mean(), 4);
        if (ed == test_days[0]) {
          (adaptive ? adaptive_first : offline_first) = avg.Mean();
        }
      }
      row.Done();
    }
    gap_by_train[train_index++] = adaptive_first - offline_first;
  }
  table.Print(std::cout);

  std::cout << "\nadaptive - offline gap on the 1-day test:  1d train: "
            << FormatDouble(gap_by_train[0], 4)
            << "   8d train: " << FormatDouble(gap_by_train[1], 4)
            << "   15d train: " << FormatDouble(gap_by_train[2], 4)
            << "\nPaper's Figure 13(a): the adaptive method improves over"
               " offline, especially\nwith a small (1-day) training set;"
               " with 15 days of history both are close and\nscores sit"
               " between 0.8 and 0.98.\n";
  return 0;
}
