// The paper's full experimental scale (Section 6): ~50 machines per
// group, the measurement-selection criteria applied to pick 100
// measurements, one month of 6-minute data (May 29 - June 27), training
// on 15 days and monitoring the rest — with wall-clock timings for every
// stage, since feasibility at this scale is part of the claim
// ("the method is fast and can be embedded in online monitoring tools").
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "engine/localizer.h"
#include "engine/monitor.h"
#include "io/monitor_io.h"
#include "telemetry/generator.h"
#include "timeseries/summary.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  PrintSection(std::cout,
               "Paper scale — 50 machines, 100 selected measurements, one"
               " month");

  ScenarioConfig config;
  config.machine_count = 50;
  config.trace_days = 30;  // May 29 .. June 27, the paper's full window
  const PaperScenario scenario = MakeGroupScenario('A', config);

  Stopwatch clock;
  const MeasurementFrame raw = GenerateTrace(scenario.spec);
  const double gen_s = clock.ElapsedSeconds();
  std::cout << "generated " << raw.MeasurementCount() << " measurements x "
            << raw.SampleCount() << " samples in " << FormatDouble(gen_s, 2)
            << " s\n";

  // The paper's selection: >= 6-minute sampling, no linear partners,
  // high variance, capped at 100.
  clock.Reset();
  SelectionCriteria criteria;
  criteria.linear_r2_threshold = 0.95;
  criteria.min_cv = 0.02;
  criteria.max_measurements = 100;
  const auto kept_ids = SelectMeasurements(raw, criteria);
  const MeasurementFrame frame = raw.SelectMeasurements(kept_ids);
  const double select_s = clock.ElapsedSeconds();
  std::cout << "selected " << frame.MeasurementCount()
            << " measurements (criteria: non-linear, high-variance) in "
            << FormatDouble(select_s, 2) << " s\n";

  // Train on May 29 - June 12, monitor June 13 - 27.
  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train = frame.SliceByTime(PaperTraceStart(), june13);
  const MeasurementFrame test =
      frame.SliceByTime(june13, raw.TimeAt(raw.SampleCount()));

  clock.Reset();
  const MeasurementGraph graph = MeasurementGraph::Neighborhood(train, 2, 42);
  MonitorConfig engine;
  engine.model = DefaultModelConfig();
  engine.model.partition.max_intervals = 12;
  SystemMonitor monitor(train, graph, engine);
  const double train_s = clock.ElapsedSeconds();

  // Serial reference: the pre-batching engine (one fork/join barrier per
  // sample via Step), on an identically-learned clone so both paths start
  // from the same models.
  std::stringstream checkpoint;
  SaveSystemMonitor(monitor, checkpoint);
  const auto serial_monitor = LoadSystemMonitor(checkpoint, engine.threads);
  clock.Reset();
  {
    std::vector<double> values(test.MeasurementCount());
    for (std::size_t t = 0; t < test.SampleCount(); ++t) {
      for (std::size_t a = 0; a < values.size(); ++a) {
        values[a] =
            test.Value(MeasurementId(static_cast<std::int32_t>(a)), t);
      }
      serial_monitor->Step(values, test.TimeAt(t));
    }
  }
  const double serial_s = clock.ElapsedSeconds();

  clock.Reset();
  const auto snapshots = monitor.Run(test);
  const double run_s = clock.ElapsedSeconds();

  std::size_t alarms = 0, outliers = 0, extensions = 0;
  for (const auto& snap : snapshots) {
    alarms += snap.alarmed_pairs.size();
    outliers += snap.outlier_pairs;
    extensions += snap.extended_pairs;
  }

  TextTable table;
  table.SetHeader({"stage", "size", "wall time", "rate"});
  table.Row()
      .Cell("train (learn all pair models)")
      .Cell(std::to_string(graph.PairCount()) + " pair models x " +
            std::to_string(train.SampleCount()) + " samples")
      .Cell(FormatDouble(train_s, 2) + " s")
      .Cell(FormatDouble(train_s * 1e3 /
                             static_cast<double>(graph.PairCount()),
                         2) +
            " ms/model")
      .Done();
  table.Row()
      .Cell("monitor, serial Step loop")
      .Cell(std::to_string(test.SampleCount()) + " samples x " +
            std::to_string(graph.PairCount()) + " pairs")
      .Cell(FormatDouble(serial_s, 2) + " s")
      .Cell(FormatDouble(serial_s * 1e3 /
                             static_cast<double>(test.SampleCount()),
                         2) +
            " ms/sample (all pairs)")
      .Done();
  table.Row()
      .Cell("monitor, pair-major batched Run")
      .Cell(std::to_string(test.SampleCount()) + " samples x " +
            std::to_string(graph.PairCount()) + " pairs")
      .Cell(FormatDouble(run_s, 2) + " s")
      .Cell(FormatDouble(run_s * 1e3 /
                             static_cast<double>(test.SampleCount()),
                         2) +
            " ms/sample (all pairs)")
      .Done();
  table.Print(std::cout);
  std::cout << "batched Run speedup over serial Step loop: "
            << FormatDouble(serial_s / run_s, 2) << "x (identical output —"
            << " see test_differential)\n";

  // Model memory: each pair carries two s^2 double arrays (prior +
  // evidence) and one s^2 uint32 count array.
  std::size_t total_cells = 0;
  double total_bytes = 0.0;
  for (std::size_t i = 0; i < graph.PairCount(); ++i) {
    const std::size_t s = monitor.Model(i).Grid().CellCount();
    total_cells += s;
    total_bytes += static_cast<double>(s) * static_cast<double>(s) *
                   (2.0 * sizeof(double) + sizeof(std::uint32_t));
  }
  std::cout << "\naverage system fitness over the test period: "
            << FormatDouble(monitor.SystemAverage().Mean(), 4)
            << "  (paper band: 0.8-0.98)\n"
            << "pair outlier observations: " << outliers
            << ", grid extensions: " << extensions << "\n"
            << "model memory: " << FormatDouble(total_bytes / 1048576.0, 1)
            << " MiB across " << graph.PairCount() << " models (avg "
            << FormatDouble(static_cast<double>(total_cells) /
                                static_cast<double>(graph.PairCount()),
                            0)
            << " cells/grid)\n";

  LocalizerConfig loc;
  loc.deviations = 2.0;
  const auto report =
      Localize(monitor.Infos(), monitor.MeasurementAverages(), loc);
  const bool hit = !report.ranking.empty() &&
                   report.ranking.front().machine ==
                       scenario.localization_machine;

  // Machine-readable trajectory record (BENCH_paper_scale.json at the
  // repo root; CI uploads it as an artifact).
  BenchJson json("paper_scale");
  json.Set("pairs", static_cast<std::int64_t>(graph.PairCount()));
  json.Set("train_samples", static_cast<std::int64_t>(train.SampleCount()));
  json.Set("test_samples", static_cast<std::int64_t>(test.SampleCount()));
  json.Set("generate_s", gen_s);
  json.Set("select_s", select_s);
  json.Set("train_s", train_s);
  json.Set("monitor_serial_step_s", serial_s);
  json.Set("monitor_batched_run_s", run_s);
  json.Set("batched_speedup_over_serial", serial_s / run_s);
  json.Set("serial_ms_per_sample",
           serial_s * 1e3 / static_cast<double>(test.SampleCount()));
  json.Set("batched_ms_per_sample",
           run_s * 1e3 / static_cast<double>(test.SampleCount()));
  json.Set("avg_system_fitness", monitor.SystemAverage().Mean());
  json.Set("alarms", static_cast<std::int64_t>(alarms));
  json.Set("outliers", static_cast<std::int64_t>(outliers));
  json.Set("extensions", static_cast<std::int64_t>(extensions));
  json.Set("model_mib", total_bytes / 1048576.0);
  json.Set("avg_cells_per_grid",
           static_cast<double>(total_cells) /
               static_cast<double>(graph.PairCount()));
  json.Set("fault_machine_ranked_first", std::string(hit ? "yes" : "no"));
  const std::string json_path = json.Write();
  if (!json_path.empty()) std::cout << "wrote " << json_path << "\n";
  std::cout << "worst machine: "
            << (report.ranking.empty()
                    ? std::string("-")
                    : scenario.spec.topology.machines
                          .at(static_cast<std::size_t>(
                              report.ranking.front().machine.value))
                          .hostname)
            << " (injected fault machine ranked #1: "
            << (hit ? "yes" : "NO") << ")\n"
            << "\nEach online sample costs well under the 6-minute sampling"
               " period even with\nhundreds of concurrent pair models —"
               " the paper's feasibility claim at its own\nscale.\n";
  return 0;
}
