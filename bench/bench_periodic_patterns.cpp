// Figure 15 reproduction: Q scores over nine test days (June 13 - 21)
// with a model initialized from one day of history and updated online.
//
// The paper's pattern: fitness is higher when the system is less active —
// nights and weekends — and lower at weekday peaks, because heavy and
// bursty workload makes the system harder to predict.
#include <iostream>

#include "bench_util.h"
#include "common/sparkline.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/fitness.h"
#include "engine/measurement_graph.h"
#include "telemetry/generator.h"

int main() {
  using namespace pmcorr;
  using namespace pmcorr::bench;

  ScenarioConfig config;
  config.machine_count = 10;
  config.trace_days = 24;  // May 29 .. June 21
  config.localization_fault = false;
  const PaperScenario scenario = MakeGroupScenario('A', config);
  const MeasurementFrame frame = GenerateTrace(scenario.spec);

  const TimePoint june13 = PaperTestStart();
  const MeasurementFrame train =
      frame.SliceByTime(PaperTraceStart(), PaperTraceStart() + kDay);
  const MeasurementFrame test = frame.SliceByTime(june13, june13 + 9 * kDay);

  // Average Q_t over a sample of pairs (1-day training, adaptive).
  const MeasurementGraph graph = MeasurementGraph::Neighborhood(frame, 1, 9);
  std::vector<PairId> pairs(graph.Pairs().begin(), graph.Pairs().end());
  if (pairs.size() > 12) pairs.resize(12);

  std::vector<std::vector<std::optional<double>>> runs;
  for (const PairId& pair : pairs) {
    runs.push_back(
        RunPair(train, test, pair.a, pair.b, DefaultModelConfig()).scores);
  }
  // Q_t = mean over pairs at each sample.
  std::vector<std::optional<double>> q(test.SampleCount());
  for (std::size_t t = 0; t < test.SampleCount(); ++t) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& run : runs) {
      if (run[t]) {
        sum += *run[t];
        ++n;
      }
    }
    if (n) q[t] = sum / static_cast<double>(n);
  }

  PrintSection(std::cout, "Figure 15 — Q scores for nine days (6.13-6.21)");
  {
    SparklineOptions spark;
    spark.width = 72;  // 8 columns per day
    std::cout << Sparkline(std::span<const std::optional<double>>(q), spark)
              << "\n|Fri    |Sat    |Sun    |Mon    |Tue    |Wed    |Thu"
                 "    |Fri    |Sat\n\n";
  }
  TextTable table;
  table.SetHeader({"day", "weekday", "mean Q", "peak-hours Q",
                   "night Q"});
  double weekday_sum = 0.0, weekend_sum = 0.0;
  int weekday_n = 0, weekend_n = 0;
  for (int d = 0; d < 9; ++d) {
    const TimePoint day = june13 + static_cast<Duration>(d) * kDay;
    ScoreAverager all, peak, night;
    for (std::size_t t = 0; t < q.size(); ++t) {
      const TimePoint tp = test.TimeAt(t);
      if (tp < day || tp >= day + kDay || !q[t]) continue;
      all.Add(*q[t]);
      const Duration s = SecondsIntoDay(tp);
      if (s >= 12 * kHour && s < 18 * kHour) peak.Add(*q[t]);
      if (s < 6 * kHour) night.Add(*q[t]);
    }
    static const char* const kDows[] = {"Sun", "Mon", "Tue", "Wed",
                                        "Thu", "Fri", "Sat"};
    table.Row()
        .Cell(PaperDay(day))
        .Cell(kDows[DayOfWeek(day)])
        .Num(all.Mean(), 4)
        .Num(peak.Mean(), 4)
        .Num(night.Mean(), 4)
        .Done();
    if (IsWeekend(day)) {
      weekend_sum += all.Mean();
      ++weekend_n;
    } else {
      weekday_sum += all.Mean();
      ++weekday_n;
    }
  }
  table.Print(std::cout);

  const double weekday_avg = weekday_n ? weekday_sum / weekday_n : 0.0;
  const double weekend_avg = weekend_n ? weekend_sum / weekend_n : 0.0;
  std::cout << "\nweekday average Q: " << FormatDouble(weekday_avg, 4)
            << "   weekend average Q: " << FormatDouble(weekend_avg, 4)
            << (weekend_avg > weekday_avg ? "   (weekends higher)" : "")
            << "\nPaper's Figure 15: higher fitness during less-active"
               " periods (nights and\nweekends), lower at weekday peak"
               " hours — the periodic pattern above.\n";
  return 0;
}
